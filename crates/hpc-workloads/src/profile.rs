//! Calibrated per-benchmark workload profiles.
//!
//! The numeric values below are calibrated against the paper's own
//! characterisation of the 24 workloads:
//!
//! * `serial_fraction` follows Fig. 13 (most benchmarks are below 2 %; nab
//!   and CoMD exceed 20 %).
//! * `serial_bb_bytes` / `parallel_bb_bytes` follow Fig. 2 (parallel basic
//!   blocks are ~3× longer on average; nab and CoEVP are the two exceptions
//!   with longer serial blocks).
//! * `serial_cold_fraction` / `parallel_cold_fraction` control the I-cache
//!   MPKI per region (Fig. 3, Fig. 11 labels): a cold-walked instruction
//!   touches code with no short-term reuse, so MPKI ≈ 62 × cold_fraction for
//!   4-byte instructions and 64-byte lines.  Parallel code has essentially
//!   zero MPKI except CoEVP (1.27 in the paper).
//! * `kernel_bytes` (the hot-loop working set) determines the line-buffer
//!   hit rate, hence the I-cache access ratio of Fig. 9 and the bus pressure
//!   of Figs. 7 and 10: benchmarks with short basic blocks (CG, IS, bots*,
//!   CoSP) have tiny kernels that fit in four line buffers, while BT, LU,
//!   ilbdc and LULESH stream multi-kilobyte bodies.
//! * `sharing` follows Fig. 4 (~99 % of dynamically executed instructions
//!   are common to all threads).
//! * IPC values stand in for the measured i7 (master) / Cortex-A9 (worker)
//!   commit rates.

use crate::benchmark::Benchmark;
use serde::{Deserialize, Serialize};

/// Parameters describing one HPC workload for the synthetic trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Which benchmark this profile describes.
    pub benchmark: Benchmark,
    /// Fraction of the master thread's dynamic instructions executed in
    /// serial regions (Fig. 13 x-axis), in `[0, 1)`.
    pub serial_fraction: f64,
    /// Average dynamic basic-block length in serial code, in bytes (Fig. 2).
    pub serial_bb_bytes: u32,
    /// Average dynamic basic-block length in parallel code, in bytes
    /// (Fig. 2).
    pub parallel_bb_bytes: u32,
    /// Static code footprint of the serial region in bytes; walked by the
    /// cold fraction of serial instructions.
    pub serial_footprint_bytes: u64,
    /// Fraction of serial instructions that walk cold code (controls the
    /// serial I-cache MPKI of Fig. 3).
    pub serial_cold_fraction: f64,
    /// Size in bytes of one hot parallel loop body (the per-kernel working
    /// set seen by the line buffers).
    pub kernel_bytes: u32,
    /// Number of distinct parallel kernels (loop nests) the benchmark
    /// cycles through; the total parallel footprint is
    /// `kernel_bytes × num_kernels` plus the cold region.
    pub num_kernels: u32,
    /// Fraction of parallel instructions that walk cold code (controls the
    /// parallel MPKI; essentially zero except CoEVP).
    pub parallel_cold_fraction: f64,
    /// Fraction of dynamically executed parallel instructions common to all
    /// threads (Fig. 4); the remainder executes thread-private code.
    pub sharing: f64,
    /// Fraction of non-loop-back branches in parallel code with
    /// data-dependent (unpredictable) outcomes.
    pub parallel_branch_noise: f64,
    /// Fraction of non-loop-back branches in serial code with
    /// data-dependent outcomes (the paper reports 3.8× higher branch MPKI in
    /// serial code).
    pub serial_branch_noise: f64,
    /// Master-core commit rate in serial regions (i7-like IPC).
    pub master_serial_ipc: f64,
    /// Master-core commit rate in parallel regions.
    pub master_parallel_ipc: f64,
    /// Worker-core commit rate in parallel regions (Cortex-A9-like IPC).
    pub worker_parallel_ipc: f64,
    /// Whether the benchmark uses critical sections (the BOTS task-parallel
    /// codes do).
    pub uses_critical_sections: bool,
    /// Number of barrier synchronisations inside each parallel region.
    pub barriers_per_region: u32,
}

impl WorkloadProfile {
    /// Returns the calibrated profile of `benchmark`.
    pub fn for_benchmark(benchmark: Benchmark) -> Self {
        use Benchmark::*;
        // Columns:                        ser%   bbS  bbP   serFootKB serCold  kernB nK  parCold  share  pNoise sNoise  mIPCs mIPCp wIPC  crit  barriers
        let p = match benchmark {
            Bt => Self::build(
                benchmark, 0.005, 48, 240, 48, 0.13, 6144, 2, 0.0002, 0.995, 0.01, 0.06, 1.8, 1.5,
                0.9, false, 2,
            ),
            Cg => Self::build(
                benchmark, 0.010, 32, 64, 32, 0.24, 192, 3, 0.0, 0.990, 0.02, 0.08, 1.5, 1.2, 0.6,
                false, 2,
            ),
            Dc => Self::build(
                benchmark, 0.020, 40, 96, 192, 0.80, 1024, 4, 0.0, 0.985, 0.02, 0.10, 1.4, 1.2,
                0.7, false, 1,
            ),
            Ep => Self::build(
                benchmark, 0.010, 40, 128, 24, 0.08, 896, 2, 0.0, 0.998, 0.01, 0.05, 2.0, 1.6, 1.0,
                false, 1,
            ),
            Ft => Self::build(
                benchmark, 0.040, 44, 132, 48, 0.32, 1536, 3, 0.0, 0.995, 0.01, 0.06, 1.9, 1.5,
                0.9, false, 2,
            ),
            Is => Self::build(
                benchmark, 0.080, 32, 56, 32, 0.19, 128, 2, 0.0, 0.990, 0.02, 0.08, 1.6, 1.3, 0.6,
                false, 1,
            ),
            Lu => Self::build(
                benchmark, 0.005, 48, 320, 40, 0.10, 8192, 1, 0.0002, 0.997, 0.01, 0.05, 1.9, 1.6,
                1.0, false, 2,
            ),
            Mg => Self::build(
                benchmark, 0.020, 44, 140, 56, 0.29, 2048, 4, 0.0, 0.995, 0.01, 0.06, 1.8, 1.5,
                0.8, false, 2,
            ),
            Sp => Self::build(
                benchmark, 0.010, 48, 200, 48, 0.16, 5120, 2, 0.0002, 0.996, 0.01, 0.06, 1.8, 1.5,
                0.9, false, 2,
            ),
            Ua => Self::build(
                benchmark, 0.050, 40, 96, 64, 0.40, 448, 6, 0.0002, 0.992, 0.02, 0.08, 1.7, 1.4,
                1.1, false, 2,
            ),
            Md => Self::build(
                benchmark, 0.003, 48, 180, 24, 0.13, 4096, 2, 0.0, 0.997, 0.01, 0.05, 1.9, 1.6,
                0.9, false, 1,
            ),
            Bwaves => Self::build(
                benchmark, 0.005, 56, 300, 32, 0.16, 7168, 1, 0.0, 0.997, 0.01, 0.05, 2.0, 1.7,
                1.0, false, 1,
            ),
            Nab => Self::build(
                benchmark, 0.220, 120, 80, 40, 0.24, 768, 3, 0.0, 0.990, 0.02, 0.04, 1.8, 1.4, 0.8,
                false, 1,
            ),
            BotsSpar => Self::build(
                benchmark, 0.020, 40, 72, 48, 0.32, 256, 3, 0.0, 0.988, 0.03, 0.09, 1.5, 1.2, 0.7,
                true, 1,
            ),
            BotsAlgn => Self::build(
                benchmark, 0.010, 36, 60, 40, 0.29, 192, 3, 0.0, 0.985, 0.03, 0.09, 1.5, 1.2, 0.7,
                true, 1,
            ),
            Ilbdc => Self::build(
                benchmark, 0.003, 48, 330, 24, 0.08, 8192, 1, 0.0, 0.998, 0.01, 0.04, 2.0, 1.7,
                1.0, false, 1,
            ),
            Fma3d => Self::build(
                benchmark, 0.050, 56, 120, 96, 0.48, 1536, 4, 0.0, 0.993, 0.02, 0.07, 1.7, 1.4,
                0.8, false, 2,
            ),
            Imagick => Self::build(
                benchmark, 0.030, 44, 110, 128, 0.72, 1280, 4, 0.0, 0.992, 0.02, 0.08, 1.6, 1.3,
                0.9, false, 1,
            ),
            Smithwa => Self::build(
                benchmark, 0.020, 40, 80, 48, 0.35, 512, 3, 0.0, 0.990, 0.02, 0.08, 1.6, 1.3, 0.8,
                false, 1,
            ),
            Kdtree => Self::build(
                benchmark, 0.010, 36, 64, 40, 0.24, 256, 3, 0.0, 0.988, 0.03, 0.08, 1.5, 1.2, 0.7,
                false, 1,
            ),
            CoEvp => Self::build(
                benchmark, 0.100, 150, 100, 64, 0.56, 2048, 8, 0.020, 0.990, 0.02, 0.04, 1.7, 1.4,
                0.8, false, 2,
            ),
            CoMd => Self::build(
                benchmark, 0.200, 56, 130, 16, 0.16, 2048, 3, 0.0, 0.995, 0.01, 0.05, 1.9, 1.5,
                0.9, false, 2,
            ),
            CoSp => Self::build(
                benchmark, 0.030, 40, 60, 48, 0.40, 192, 3, 0.0, 0.988, 0.03, 0.09, 1.5, 1.2, 0.6,
                false, 1,
            ),
            Lulesh => Self::build(
                benchmark, 0.070, 52, 280, 56, 0.19, 6144, 2, 0.0, 0.996, 0.01, 0.05, 1.9, 1.6,
                1.0, false, 2,
            ),
        };
        p.validate();
        p
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        benchmark: Benchmark,
        serial_fraction: f64,
        serial_bb_bytes: u32,
        parallel_bb_bytes: u32,
        serial_footprint_kb: u64,
        serial_cold_fraction: f64,
        kernel_bytes: u32,
        num_kernels: u32,
        parallel_cold_fraction: f64,
        sharing: f64,
        parallel_branch_noise: f64,
        serial_branch_noise: f64,
        master_serial_ipc: f64,
        master_parallel_ipc: f64,
        worker_parallel_ipc: f64,
        uses_critical_sections: bool,
        barriers_per_region: u32,
    ) -> Self {
        WorkloadProfile {
            benchmark,
            serial_fraction,
            serial_bb_bytes,
            parallel_bb_bytes,
            serial_footprint_bytes: serial_footprint_kb * 1024,
            serial_cold_fraction,
            kernel_bytes,
            num_kernels,
            parallel_cold_fraction,
            sharing,
            parallel_branch_noise,
            serial_branch_noise,
            master_serial_ipc,
            master_parallel_ipc,
            worker_parallel_ipc,
            uses_critical_sections,
            barriers_per_region,
        }
    }

    /// Total shared parallel hot-code footprint in bytes.
    pub fn parallel_footprint_bytes(&self) -> u64 {
        self.kernel_bytes as u64 * self.num_kernels as u64
    }

    /// Checks that every parameter is in its valid range.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.serial_fraction),
            "serial fraction out of range"
        );
        assert!(self.serial_bb_bytes >= 8 && self.parallel_bb_bytes >= 8);
        assert!(self.serial_footprint_bytes >= 1024);
        assert!((0.0..=1.0).contains(&self.serial_cold_fraction));
        assert!((0.0..=1.0).contains(&self.parallel_cold_fraction));
        assert!(self.kernel_bytes >= 64, "a kernel spans at least one line");
        assert!(self.num_kernels >= 1);
        assert!((0.0..=1.0).contains(&self.sharing));
        assert!((0.0..=1.0).contains(&self.parallel_branch_noise));
        assert!((0.0..=1.0).contains(&self.serial_branch_noise));
        for ipc in [
            self.master_serial_ipc,
            self.master_parallel_ipc,
            self.worker_parallel_ipc,
        ] {
            assert!(ipc.is_finite() && ipc > 0.0, "IPC values must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::ALL {
            WorkloadProfile::for_benchmark(b).validate();
        }
    }

    #[test]
    fn parallel_basic_blocks_are_longer_on_average() {
        // Fig. 2: ~3x longer in parallel code, with nab and CoEVP as the
        // documented exceptions.
        let mut ratio_sum = 0.0;
        let mut exceptions = Vec::new();
        for b in Benchmark::ALL {
            let p = b.profile();
            ratio_sum += p.parallel_bb_bytes as f64 / p.serial_bb_bytes as f64;
            if p.serial_bb_bytes > p.parallel_bb_bytes {
                exceptions.push(b);
            }
        }
        let mean_ratio = ratio_sum / Benchmark::ALL.len() as f64;
        assert!(
            mean_ratio > 2.0,
            "parallel blocks should be much longer on average, got {mean_ratio:.2}"
        );
        assert_eq!(
            exceptions,
            vec![Benchmark::Nab, Benchmark::CoEvp],
            "only nab and CoEVP have longer serial basic blocks"
        );
    }

    #[test]
    fn only_coevp_has_nonnegligible_parallel_cold_fraction() {
        for b in Benchmark::ALL {
            let p = b.profile();
            if b == Benchmark::CoEvp {
                assert!(p.parallel_cold_fraction > 0.01);
            } else {
                assert!(
                    p.parallel_cold_fraction < 0.001,
                    "{b} should have near-zero parallel MPKI"
                );
            }
        }
    }

    #[test]
    fn serial_fractions_match_figure_13_groups() {
        assert!(Benchmark::Nab.profile().serial_fraction > 0.15);
        assert!(Benchmark::CoMd.profile().serial_fraction > 0.15);
        assert!(Benchmark::Lu.profile().serial_fraction < 0.01);
        let below_2pc = Benchmark::ALL
            .iter()
            .filter(|b| b.profile().serial_fraction <= 0.02)
            .count();
        assert!(
            below_2pc >= 12,
            "most benchmarks have tiny serial fractions"
        );
    }

    #[test]
    fn sharing_is_high_for_all_benchmarks() {
        for b in Benchmark::ALL {
            assert!(
                b.profile().sharing >= 0.98,
                "{b}: instruction sharing should be ~99%"
            );
        }
    }

    #[test]
    fn bots_benchmarks_use_critical_sections() {
        assert!(Benchmark::BotsSpar.profile().uses_critical_sections);
        assert!(Benchmark::BotsAlgn.profile().uses_critical_sections);
        assert!(!Benchmark::Lu.profile().uses_critical_sections);
    }

    #[test]
    fn worker_ipc_is_lower_than_master_ipc() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(p.worker_parallel_ipc < p.master_serial_ipc);
        }
    }

    #[test]
    fn coevp_parallel_footprint_exceeds_a_32k_cache() {
        // CoEVP's hot kernels alone cover at least half of a 32 KB I-cache;
        // together with its cold-walk fraction this is the one benchmark
        // with a non-negligible parallel MPKI (1.27 in the paper).
        assert!(Benchmark::CoEvp.profile().parallel_footprint_bytes() >= 16 * 1024);
    }
}
