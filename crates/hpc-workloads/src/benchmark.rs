//! The 24 evaluated HPC benchmarks and their suites.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The benchmark suite a workload comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Suite {
    /// NAS Parallel Benchmarks (class C inputs in the paper).
    Npb,
    /// SPEC OMP 2012 (reference inputs in the paper).
    SpecOmp2012,
    /// ExMatEx proxy applications (default inputs in the paper).
    ExMatEx,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Npb => "NPB",
            Suite::SpecOmp2012 => "SPEC OMP 2012",
            Suite::ExMatEx => "ExMatEx",
        };
        f.write_str(s)
    }
}

/// One of the 24 HPC workloads evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    // NPB suite.
    Bt,
    Cg,
    Dc,
    Ep,
    Ft,
    Is,
    Lu,
    Mg,
    Sp,
    Ua,
    // SPEC OMP 2012.
    Md,
    Bwaves,
    Nab,
    BotsSpar,
    BotsAlgn,
    Ilbdc,
    Fma3d,
    Imagick,
    Smithwa,
    Kdtree,
    // ExMatEx.
    CoEvp,
    CoMd,
    CoSp,
    Lulesh,
}

impl Benchmark {
    /// Every benchmark, in the order used by the paper's figures.
    pub const ALL: [Benchmark; 24] = [
        Benchmark::Bt,
        Benchmark::Cg,
        Benchmark::Dc,
        Benchmark::Ep,
        Benchmark::Ft,
        Benchmark::Is,
        Benchmark::Lu,
        Benchmark::Mg,
        Benchmark::Sp,
        Benchmark::Ua,
        Benchmark::Md,
        Benchmark::Bwaves,
        Benchmark::Nab,
        Benchmark::BotsSpar,
        Benchmark::BotsAlgn,
        Benchmark::Ilbdc,
        Benchmark::Fma3d,
        Benchmark::Imagick,
        Benchmark::Smithwa,
        Benchmark::Kdtree,
        Benchmark::CoEvp,
        Benchmark::CoMd,
        Benchmark::CoSp,
        Benchmark::Lulesh,
    ];

    /// The benchmark's suite.
    pub fn suite(self) -> Suite {
        use Benchmark::*;
        match self {
            Bt | Cg | Dc | Ep | Ft | Is | Lu | Mg | Sp | Ua => Suite::Npb,
            Md | Bwaves | Nab | BotsSpar | BotsAlgn | Ilbdc | Fma3d | Imagick | Smithwa
            | Kdtree => Suite::SpecOmp2012,
            CoEvp | CoMd | CoSp | Lulesh => Suite::ExMatEx,
        }
    }

    /// The name used in the paper's figures.
    pub fn name(self) -> &'static str {
        use Benchmark::*;
        match self {
            Bt => "BT",
            Cg => "CG",
            Dc => "DC",
            Ep => "EP",
            Ft => "FT",
            Is => "IS",
            Lu => "LU",
            Mg => "MG",
            Sp => "SP",
            Ua => "UA",
            Md => "md",
            Bwaves => "bwaves",
            Nab => "nab",
            BotsSpar => "botsspar",
            BotsAlgn => "botsalgn",
            Ilbdc => "ilbdc",
            Fma3d => "fma3d",
            Imagick => "imagick",
            Smithwa => "smithwa",
            Kdtree => "kdtree",
            CoEvp => "CoEVP",
            CoMd => "CoMD",
            CoSp => "CoSP",
            Lulesh => "LULESH",
        }
    }

    /// Looks a benchmark up by its figure name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// The calibrated workload profile for this benchmark.
    pub fn profile(self) -> crate::profile::WorkloadProfile {
        crate::profile::WorkloadProfile::for_benchmark(self)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_24_benchmarks() {
        assert_eq!(Benchmark::ALL.len(), 24);
        let npb = Benchmark::ALL
            .iter()
            .filter(|b| b.suite() == Suite::Npb)
            .count();
        let spec = Benchmark::ALL
            .iter()
            .filter(|b| b.suite() == Suite::SpecOmp2012)
            .count();
        let exm = Benchmark::ALL
            .iter()
            .filter(|b| b.suite() == Suite::ExMatEx)
            .count();
        assert_eq!((npb, spec, exm), (10, 10, 4));
    }

    #[test]
    fn names_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for b in Benchmark::ALL {
            assert!(seen.insert(b.name()), "duplicate name {}", b.name());
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(Benchmark::from_name(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(Benchmark::from_name("not-a-benchmark"), None);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Benchmark::CoEvp.to_string(), "CoEVP");
        assert_eq!(Benchmark::Lulesh.to_string(), "LULESH");
        assert_eq!(Benchmark::BotsSpar.to_string(), "botsspar");
        assert_eq!(Suite::SpecOmp2012.to_string(), "SPEC OMP 2012");
    }

    #[test]
    fn every_benchmark_has_a_profile() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert_eq!(p.benchmark, b);
        }
    }
}
