//! Deterministic synthetic trace generation.

use crate::layout::{
    CodeLayout, CRITICAL_BASE, PARALLEL_COLD_BASE, PARALLEL_COLD_BYTES, PRIVATE_KERNEL_BYTES,
    SERIAL_COLD_BASE, SERIAL_HOT_BASE, SERIAL_HOT_BYTES,
};
use crate::profile::WorkloadProfile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sim_trace::{SyncEvent, ThreadTrace, TraceBuilder, TraceSet};

/// How much synthetic work to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of worker threads (the master is generated in addition).
    pub num_workers: usize,
    /// Parallel-region instructions generated per thread (across all
    /// phases).
    pub parallel_instructions_per_thread: u64,
    /// Number of parallel regions (fork/join phases).
    pub num_phases: u32,
    /// Seed for the deterministic pseudo-random generator.
    pub seed: u64,
}

impl GeneratorConfig {
    /// The configuration used by the figure-reproduction harnesses: eight
    /// workers (Table I) and enough instructions for stable statistics.
    pub fn paper() -> Self {
        GeneratorConfig {
            num_workers: 8,
            parallel_instructions_per_thread: 120_000,
            num_phases: 4,
            seed: 0xC0FF_EE00,
        }
    }

    /// A small configuration for unit and integration tests.
    pub fn small() -> Self {
        GeneratorConfig {
            num_workers: 2,
            parallel_instructions_per_thread: 8_000,
            num_phases: 2,
            seed: 7,
        }
    }

    /// Returns a copy with a different worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.num_workers = n;
        self
    }

    /// Returns a copy with a different per-thread instruction budget.
    pub fn with_instructions(mut self, n: u64) -> Self {
        self.parallel_instructions_per_thread = n;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the worker count, instruction budget or phase count is
    /// zero.
    pub fn validate(&self) {
        assert!(self.num_workers >= 1, "need at least one worker");
        assert!(
            self.parallel_instructions_per_thread >= 1000,
            "need a meaningful instruction budget"
        );
        assert!(self.num_phases >= 1, "need at least one parallel region");
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::paper()
    }
}

/// Generates the per-thread traces of one benchmark run.
#[derive(Debug)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    config: GeneratorConfig,
    layout: CodeLayout,
}

/// Internal emission state for one thread.
struct Emitter {
    builder: TraceBuilder,
    rng: ChaCha8Rng,
    serial_cold_cursor: u64,
    parallel_cold_cursor: u64,
    emitted: u64,
}

impl Emitter {
    fn new(tid: usize, seed: u64) -> Self {
        Emitter {
            builder: TraceBuilder::new(tid),
            rng: ChaCha8Rng::seed_from_u64(seed ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            serial_cold_cursor: 0,
            parallel_cold_cursor: 0,
            emitted: 0,
        }
    }

    /// Emits one basic block of `instrs` four-byte instructions starting at
    /// `addr`; the terminating branch has the given outcome and target.
    fn basic_block(&mut self, addr: u64, instrs: u32, taken: bool, target: u64) -> u64 {
        debug_assert!(instrs >= 1);
        for i in 0..instrs - 1 {
            self.builder.instr(addr + i as u64 * 4, 4);
        }
        self.builder
            .branch(addr + (instrs as u64 - 1) * 4, 4, target, taken);
        self.emitted += instrs as u64;
        addr + instrs as u64 * 4
    }

    /// Emits approximately `budget` instructions looping over a body of
    /// `body_bytes` at `base` with basic blocks of `bb_bytes`.
    ///
    /// `noise` is the probability that a non-back-edge branch gets a
    /// data-dependent (random) outcome; such branches target their own
    /// fall-through address so the instruction stream stays sequential.
    fn hot_loop(&mut self, base: u64, body_bytes: u32, bb_bytes: u32, budget: u64, noise: f64) {
        if budget == 0 {
            return;
        }
        let bb_instrs = (bb_bytes / 4).max(1);
        let bbs_per_body = (body_bytes / bb_bytes).max(1);
        let mut emitted = 0u64;
        let mut bb = 0u32;
        let mut addr = base;
        // The budget is respected at basic-block granularity: emission may
        // stop in the middle of a body (the next code the thread runs simply
        // starts elsewhere, exactly as if the loop trip count had been
        // reached).
        while emitted < budget {
            let last_bb = bb == bbs_per_body - 1;
            let fallthrough = addr + bb_instrs as u64 * 4;
            let done = emitted + bb_instrs as u64 >= budget;
            let (taken, target) = if last_bb {
                // Loop back-edge; exit (not taken) once the budget is used.
                (!done, base)
            } else if noise > 0.0 && self.rng.gen_bool(noise) {
                (self.rng.gen_bool(0.5), fallthrough)
            } else {
                (false, fallthrough)
            };
            self.basic_block(addr, bb_instrs, taken, target);
            emitted += bb_instrs as u64;
            if last_bb {
                bb = 0;
                addr = base;
            } else {
                bb += 1;
                addr = fallthrough;
            }
        }
    }

    /// Emits approximately `budget` instructions walking cold code: a
    /// sequential sweep through `region_bytes` at `region_base` with no
    /// short-term reuse (every line is touched once per sweep).
    fn cold_walk(
        &mut self,
        region_base: u64,
        region_bytes: u64,
        bb_bytes: u32,
        budget: u64,
        cursor: CursorKind,
    ) {
        if budget == 0 {
            return;
        }
        let bb_instrs = (bb_bytes / 4).max(1);
        let mut emitted = 0u64;
        let mut offset = match cursor {
            CursorKind::Serial => self.serial_cold_cursor,
            CursorKind::Parallel => self.parallel_cold_cursor,
        };
        while emitted < budget {
            if offset + bb_instrs as u64 * 4 > region_bytes {
                // Wrap to the start of the region with a taken branch.
                offset = 0;
            }
            let addr = region_base + offset;
            let next = addr + bb_instrs as u64 * 4;
            let wrap_next = next - region_base >= region_bytes;
            let done = emitted + bb_instrs as u64 >= budget;
            let (taken, target) = if wrap_next {
                (true, region_base)
            } else {
                (false, next)
            };
            self.basic_block(addr, bb_instrs, taken && !done, target);
            emitted += bb_instrs as u64;
            offset = if wrap_next { 0 } else { next - region_base };
        }
        match cursor {
            CursorKind::Serial => self.serial_cold_cursor = offset,
            CursorKind::Parallel => self.parallel_cold_cursor = offset,
        }
    }

    fn finish(self) -> ThreadTrace {
        self.builder.finish()
    }
}

#[derive(Debug, Clone, Copy)]
enum CursorKind {
    Serial,
    Parallel,
}

impl TraceGenerator {
    /// Creates a generator for `profile` at the given scale.
    ///
    /// # Panics
    ///
    /// Panics if the profile or configuration is invalid.
    pub fn new(profile: WorkloadProfile, config: GeneratorConfig) -> Self {
        profile.validate();
        config.validate();
        let layout = CodeLayout::new(
            profile.num_kernels,
            profile.kernel_bytes,
            profile.serial_footprint_bytes,
        );
        TraceGenerator {
            profile,
            config,
            layout,
        }
    }

    /// The code layout used by this generator.
    pub fn layout(&self) -> &CodeLayout {
        &self.layout
    }

    /// Generates the complete trace set: thread 0 is the master, threads
    /// `1..=num_workers` are the workers.
    pub fn generate(&self) -> TraceSet {
        let mut traces = Vec::with_capacity(self.config.num_workers + 1);
        traces.push(self.generate_thread(0));
        for tid in 1..=self.config.num_workers {
            traces.push(self.generate_thread(tid));
        }
        TraceSet::new(traces)
    }

    /// Generates the trace of a single thread (0 = master).
    pub fn generate_thread(&self, tid: usize) -> ThreadTrace {
        let p = &self.profile;
        let c = &self.config;
        let is_master = tid == 0;
        let mut em = Emitter::new(tid, c.seed);

        let num_threads = c.num_workers + 1;
        let parallel_per_phase =
            (c.parallel_instructions_per_thread / c.num_phases as u64).max(1000);
        let serial_total = (p.serial_fraction / (1.0 - p.serial_fraction)
            * c.parallel_instructions_per_thread as f64) as u64;
        let serial_per_phase = serial_total / c.num_phases as u64;

        for phase in 0..c.num_phases {
            if is_master {
                em.builder.set_ipc(p.master_serial_ipc);
                self.emit_serial_section(&mut em, serial_per_phase);
                em.builder.sync(SyncEvent::ParallelStart { num_threads });
                em.builder.set_ipc(p.master_parallel_ipc);
            } else {
                em.builder.sync(SyncEvent::ParallelStart { num_threads });
                em.builder.set_ipc(p.worker_parallel_ipc);
            }

            self.emit_parallel_region(&mut em, tid, phase, parallel_per_phase);
            em.builder.sync(SyncEvent::ParallelEnd);
        }

        if is_master && serial_per_phase > 0 {
            // A short epilogue so the run ends in serial code, like a real
            // OpenMP program returning from main.
            em.builder.set_ipc(p.master_serial_ipc);
            self.emit_serial_section(&mut em, serial_per_phase / 4);
        }

        em.finish()
    }

    /// Emits one serial section of roughly `budget` instructions on the
    /// master thread: a hot loop interleaved with cold walks over the
    /// serial footprint.
    fn emit_serial_section(&self, em: &mut Emitter, budget: u64) {
        if budget == 0 {
            return;
        }
        let p = &self.profile;
        let cold_budget = (budget as f64 * p.serial_cold_fraction) as u64;
        let hot_budget = budget - cold_budget;
        // Interleave in slices so cold and hot code mix like real call
        // chains rather than forming two giant blocks.  Tiny sections (low
        // serial-fraction benchmarks at test scales) use a single slice so
        // basic-block granularity does not inflate the serial fraction.
        let slices = if budget < 2000 { 1u64 } else { 4u64 };
        for s in 0..slices {
            let hot = hot_budget / slices + u64::from(s == 0) * (hot_budget % slices);
            let cold = cold_budget / slices + u64::from(s == 0) * (cold_budget % slices);
            em.hot_loop(
                SERIAL_HOT_BASE,
                SERIAL_HOT_BYTES,
                p.serial_bb_bytes,
                hot,
                p.serial_branch_noise,
            );
            em.cold_walk(
                SERIAL_COLD_BASE,
                self.layout.serial_cold_bytes,
                p.serial_bb_bytes,
                cold,
                CursorKind::Serial,
            );
        }
    }

    /// Emits one thread's share of one parallel region (`budget`
    /// instructions split across `barriers_per_region + 1` chunks).
    fn emit_parallel_region(&self, em: &mut Emitter, tid: usize, phase: u32, budget: u64) {
        let p = &self.profile;
        let chunks = p.barriers_per_region + 1;
        for chunk in 0..chunks {
            // ±1% per-thread jitter so threads are not in artificial
            // lock-step (barrier wait times stay realistic but non-zero).
            let base_budget = budget / chunks as u64;
            let jitter = (base_budget as f64 * 0.01) as i64;
            let delta = if jitter > 0 {
                em.rng.gen_range(-jitter..=jitter)
            } else {
                0
            };
            let chunk_budget = (base_budget as i64 + delta).max(100) as u64;

            self.emit_parallel_chunk(em, tid, chunk_budget);

            if p.uses_critical_sections {
                em.builder.sync(SyncEvent::CriticalWait { id: 0 });
                em.hot_loop(CRITICAL_BASE, 256, p.parallel_bb_bytes.min(64), 48, 0.0);
                em.builder.sync(SyncEvent::CriticalSignal { id: 0 });
            }
            if chunk + 1 < chunks {
                em.builder.sync(SyncEvent::Barrier {
                    id: phase * 64 + chunk,
                });
            }
        }
    }

    /// Emits one chunk of parallel work: shared hot kernels, a shared cold
    /// walk (if the profile has one), and a small amount of thread-private
    /// code.
    fn emit_parallel_chunk(&self, em: &mut Emitter, tid: usize, budget: u64) {
        let p = &self.profile;
        let private_budget = (budget as f64 * (1.0 - p.sharing)) as u64;
        let cold_budget = (budget as f64 * p.parallel_cold_fraction) as u64;
        let hot_budget = budget.saturating_sub(private_budget + cold_budget);

        // Rotate through the kernels, splitting the hot budget evenly.
        let per_kernel = (hot_budget / self.layout.kernels.len() as u64).max(1);
        for k in &self.layout.kernels {
            em.hot_loop(
                k.base,
                k.body_bytes,
                p.parallel_bb_bytes,
                per_kernel,
                p.parallel_branch_noise,
            );
        }
        em.cold_walk(
            PARALLEL_COLD_BASE,
            PARALLEL_COLD_BYTES,
            p.parallel_bb_bytes,
            cold_budget,
            CursorKind::Parallel,
        );
        em.hot_loop(
            CodeLayout::private_base(tid),
            PRIVATE_KERNEL_BYTES,
            p.parallel_bb_bytes.min(PRIVATE_KERNEL_BYTES),
            private_budget,
            p.parallel_branch_noise,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Benchmark;
    use sim_trace::{SharingStats, TraceStats};

    fn generate(b: Benchmark, cfg: GeneratorConfig) -> TraceSet {
        TraceGenerator::new(b.profile(), cfg).generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Benchmark::Lu, GeneratorConfig::small());
        let b = generate(Benchmark::Lu, GeneratorConfig::small());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(Benchmark::Lu, GeneratorConfig::small());
        let b = generate(Benchmark::Lu, GeneratorConfig::small().with_seed(99));
        assert_ne!(a, b);
    }

    #[test]
    fn thread_count_matches_configuration() {
        let set = generate(Benchmark::Cg, GeneratorConfig::small().with_workers(4));
        assert_eq!(set.num_threads(), 5);
    }

    #[test]
    fn instruction_budget_is_roughly_respected() {
        let cfg = GeneratorConfig::small();
        let set = generate(Benchmark::Mg, cfg);
        for t in set.iter().skip(1) {
            let n = t.num_instructions();
            let target = cfg.parallel_instructions_per_thread;
            assert!(
                n as f64 > target as f64 * 0.8 && (n as f64) < target as f64 * 1.3,
                "worker generated {n} instructions for a target of {target}"
            );
        }
    }

    #[test]
    fn serial_fraction_matches_profile() {
        let cfg = GeneratorConfig::small().with_instructions(30_000);
        for b in [Benchmark::Nab, Benchmark::CoMd, Benchmark::Lu] {
            let set = generate(b, cfg);
            let stats = TraceStats::from_trace(set.master());
            let target = b.profile().serial_fraction;
            let got = stats.serial_fraction();
            assert!(
                (got - target).abs() < target * 0.3 + 0.02,
                "{b}: serial fraction {got:.3} should be close to {target:.3}"
            );
        }
    }

    #[test]
    fn basic_block_lengths_match_profile() {
        let cfg = GeneratorConfig::small().with_instructions(30_000);
        for b in [Benchmark::Lu, Benchmark::Cg, Benchmark::Nab] {
            let p = b.profile();
            let set = generate(b, cfg);
            let stats = TraceStats::from_trace(set.master());
            let got_parallel = stats.parallel.avg_basic_block_bytes();
            assert!(
                (got_parallel - p.parallel_bb_bytes as f64).abs()
                    < p.parallel_bb_bytes as f64 * 0.25,
                "{b}: parallel BB length {got_parallel:.1} vs profile {}",
                p.parallel_bb_bytes
            );
            if p.serial_fraction > 0.01 {
                let got_serial = stats.serial.avg_basic_block_bytes();
                assert!(
                    (got_serial - p.serial_bb_bytes as f64).abs() < p.serial_bb_bytes as f64 * 0.25,
                    "{b}: serial BB length {got_serial:.1} vs profile {}",
                    p.serial_bb_bytes
                );
            }
        }
    }

    #[test]
    fn instruction_sharing_is_high() {
        let set = generate(Benchmark::Lu, GeneratorConfig::small().with_workers(4));
        let sharing = SharingStats::from_trace_set(&set);
        assert!(
            sharing.dynamic_sharing > 0.95,
            "dynamic sharing should be ~99%, got {:.3}",
            sharing.dynamic_sharing
        );
        assert!(sharing.static_sharing > 0.5);
    }

    #[test]
    fn workers_only_execute_parallel_code() {
        let set = generate(Benchmark::Ft, GeneratorConfig::small());
        for t in set.iter().skip(1) {
            let stats = TraceStats::from_trace(t);
            assert_eq!(
                stats.serial.instructions, 0,
                "workers must not execute serial-region instructions"
            );
        }
    }

    #[test]
    fn master_and_workers_share_parallel_kernel_addresses() {
        let set = generate(Benchmark::Sp, GeneratorConfig::small());
        let master = TraceStats::from_trace(set.master());
        let worker = TraceStats::from_trace(set.thread(sim_trace::ThreadId(1)).unwrap());
        let master_kernel_addrs: std::collections::HashSet<_> = master
            .footprints
            .parallel_addrs
            .iter()
            .filter(|a| CodeLayout::is_shared_address(**a))
            .collect();
        let worker_kernel_addrs: std::collections::HashSet<_> = worker
            .footprints
            .parallel_addrs
            .iter()
            .filter(|a| CodeLayout::is_shared_address(**a))
            .collect();
        assert_eq!(master_kernel_addrs, worker_kernel_addrs);
    }

    #[test]
    fn bots_traces_contain_critical_sections() {
        let set = generate(Benchmark::BotsSpar, GeneratorConfig::small());
        let has_critical = set.iter().any(|t| {
            t.records().iter().any(|r| {
                matches!(
                    r,
                    sim_trace::TraceRecord::Sync(SyncEvent::CriticalWait { .. })
                )
            })
        });
        assert!(has_critical);
        let set = generate(Benchmark::Lu, GeneratorConfig::small());
        let has_critical = set.iter().any(|t| {
            t.records().iter().any(|r| {
                matches!(
                    r,
                    sim_trace::TraceRecord::Sync(SyncEvent::CriticalWait { .. })
                )
            })
        });
        assert!(!has_critical);
    }

    #[test]
    fn traces_contain_matching_parallel_start_end_pairs() {
        let cfg = GeneratorConfig::small();
        let set = generate(Benchmark::Is, cfg);
        for t in set.iter() {
            let starts = t
                .records()
                .iter()
                .filter(|r| {
                    matches!(
                        r,
                        sim_trace::TraceRecord::Sync(SyncEvent::ParallelStart { .. })
                    )
                })
                .count();
            let ends = t
                .records()
                .iter()
                .filter(|r| matches!(r, sim_trace::TraceRecord::Sync(SyncEvent::ParallelEnd)))
                .count();
            assert_eq!(starts, cfg.num_phases as usize);
            assert_eq!(ends, cfg.num_phases as usize);
        }
    }

    #[test]
    fn every_benchmark_generates_without_panicking() {
        let cfg = GeneratorConfig {
            num_workers: 2,
            parallel_instructions_per_thread: 4_000,
            num_phases: 1,
            seed: 1,
        };
        for b in Benchmark::ALL {
            let set = generate(b, cfg);
            assert!(
                set.total_instructions() > 0,
                "{b} generated an empty trace set"
            );
        }
    }

    #[test]
    #[should_panic(expected = "meaningful instruction budget")]
    fn tiny_budget_rejected() {
        GeneratorConfig::small().with_instructions(10).validate();
    }
}
