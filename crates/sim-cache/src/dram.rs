//! Simple DRAM timing model.
//!
//! Table I of the paper only says "timing parameters = standard" and that
//! the values match the Micron DDR3-1600 specification.  For instruction
//! fills — which are rare and have high row-buffer locality — a row-buffer
//! model with DDR3-1600-like parameters (CL-tRCD-tRP = 11-11-11 at 800 MHz,
//! expressed in CPU cycles at a 2 GHz core clock, i.e. ×2.5) captures the
//! relevant behaviour: a row hit costs roughly CL, a row miss roughly
//! tRP + tRCD + CL.

use serde::{Deserialize, Serialize};

/// DRAM timing and organisation parameters (in CPU cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Column access latency (CAS) in CPU cycles.
    pub cas_cycles: u64,
    /// Row-to-column delay (tRCD) in CPU cycles.
    pub rcd_cycles: u64,
    /// Row precharge time (tRP) in CPU cycles.
    pub rp_cycles: u64,
    /// Data-transfer time for one 64 B line in CPU cycles.
    pub burst_cycles: u64,
    /// Row (page) size in bytes.
    pub row_size: u64,
    /// Number of banks (each bank keeps one open row).
    pub num_banks: u64,
}

impl DramConfig {
    /// DDR3-1600 11-11-11 timing expressed in cycles of a 2 GHz core.
    ///
    /// 11 memory-bus cycles at 800 MHz = 13.75 ns ≈ 28 CPU cycles at 2 GHz;
    /// a 64 B burst (4 beats of a 64-bit DDR interface) takes 2.5 ns ≈ 5 CPU
    /// cycles.
    pub fn ddr3_1600() -> Self {
        DramConfig {
            cas_cycles: 28,
            rcd_cycles: 28,
            rp_cycles: 28,
            burst_cycles: 5,
            row_size: 8 * 1024,
            num_banks: 8,
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr3_1600()
    }
}

/// DRAM access statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DramStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit the open row.
    pub row_hits: u64,
    /// Accesses that required opening a new row.
    pub row_misses: u64,
}

/// An open-row DRAM model with per-bank row buffers.
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    /// Open row per bank, indexed by bank number.
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM with the given timing.
    pub fn new(config: DramConfig) -> Self {
        Dram {
            config,
            open_rows: vec![None; config.num_banks as usize],
            stats: DramStats::default(),
        }
    }

    /// The timing parameters.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Performs one line read at `addr`, returning its latency in CPU
    /// cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        self.stats.accesses += 1;
        let row = addr / self.config.row_size;
        let bank = (row % self.config.num_banks) as usize;
        let open = self.open_rows[bank].replace(row);
        let row_hit = open == Some(row);
        if row_hit {
            self.stats.row_hits += 1;
            self.config.cas_cycles + self.config.burst_cycles
        } else {
            self.stats.row_misses += 1;
            let precharge = if open.is_some() {
                self.config.rp_cycles
            } else {
                0
            };
            precharge + self.config.rcd_cycles + self.config.cas_cycles + self.config.burst_cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_cheaper_than_row_miss() {
        let mut d = Dram::new(DramConfig::ddr3_1600());
        let first = d.access(0x0000); // bank 0, opens row 0 (no precharge)
        let hit = d.access(0x0040); // same row
        assert!(hit < first || first == hit, "first access has no precharge");
        // Conflict: a different row in the same bank (row + num_banks).
        let cfg = *d.config();
        let conflict_addr = cfg.row_size * cfg.num_banks;
        let miss = d.access(conflict_addr);
        assert!(
            miss > hit,
            "row conflict {miss} should exceed row hit {hit}"
        );
        assert_eq!(d.stats().accesses, 3);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn sequential_lines_mostly_hit_the_row() {
        let mut d = Dram::new(DramConfig::ddr3_1600());
        for i in 0..128u64 {
            d.access(i * 64); // 8 KB row holds 128 lines
        }
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().row_hits, 127);
    }

    #[test]
    fn different_banks_keep_independent_rows() {
        let mut d = Dram::new(DramConfig::ddr3_1600());
        let cfg = *d.config();
        d.access(0); // bank 0, row 0
        d.access(cfg.row_size); // bank 1, row 1
                                // Returning to bank 0's open row is still a hit.
        let lat = d.access(0x40);
        assert_eq!(lat, cfg.cas_cycles + cfg.burst_cycles);
    }

    #[test]
    fn default_config_is_ddr3_1600() {
        assert_eq!(DramConfig::default(), DramConfig::ddr3_1600());
    }
}
