//! Replacement policies for set-associative caches.
//!
//! The paper's I-cache uses LRU (Table I); [`FifoPolicy`] and
//! [`PseudoLruPolicy`] are provided for the ablation benchmarks that check
//! how sensitive the shared-I-cache result is to the replacement policy.

use std::fmt::Debug;

/// A replacement policy for one cache set of a fixed associativity.
///
/// The policy only tracks metadata; the cache itself stores tags.  Ways are
/// identified by their index `0..associativity`.
pub trait ReplacementPolicy: Debug + Send + Sync {
    /// Called when `way` is accessed (hit) or filled (miss completion).
    fn touch(&mut self, way: u32);

    /// Returns the way to evict next.  Must not be called on an empty set
    /// (the cache fills invalid ways first).
    fn victim(&self) -> u32;

    /// Resets the policy state (all ways become equally old).
    fn reset(&mut self);

    /// Creates a boxed clone of this policy with the same associativity but
    /// fresh state, used when constructing the per-set policy array.
    fn clone_fresh(&self) -> Box<dyn ReplacementPolicy>;
}

/// True least-recently-used replacement.
#[derive(Debug, Clone)]
pub struct LruPolicy {
    /// `stack[0]` is the most recently used way; the last entry is the LRU.
    stack: Vec<u32>,
}

impl LruPolicy {
    /// Creates an LRU policy for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: u32) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        LruPolicy {
            stack: (0..ways).collect(),
        }
    }
}

impl ReplacementPolicy for LruPolicy {
    fn touch(&mut self, way: u32) {
        let pos = self
            .stack
            .iter()
            .position(|&w| w == way)
            .expect("touched way outside the set");
        let w = self.stack.remove(pos);
        self.stack.insert(0, w);
    }

    fn victim(&self) -> u32 {
        *self.stack.last().expect("LRU stack is never empty")
    }

    fn reset(&mut self) {
        let ways = self.stack.len() as u32;
        self.stack = (0..ways).collect();
    }

    fn clone_fresh(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(LruPolicy::new(self.stack.len() as u32))
    }
}

/// First-in first-out replacement (insertion order, ignores hits).
#[derive(Debug, Clone)]
pub struct FifoPolicy {
    order: Vec<u32>,
    filled: Vec<bool>,
}

impl FifoPolicy {
    /// Creates a FIFO policy for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: u32) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        FifoPolicy {
            order: (0..ways).collect(),
            filled: vec![false; ways as usize],
        }
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn touch(&mut self, way: u32) {
        // Only a fill (first touch of the way) changes FIFO order.
        if !self.filled[way as usize] {
            self.filled[way as usize] = true;
            let pos = self
                .order
                .iter()
                .position(|&w| w == way)
                .expect("touched way outside the set");
            let w = self.order.remove(pos);
            self.order.insert(0, w);
        }
    }

    fn victim(&self) -> u32 {
        let victim = *self.order.last().expect("FIFO order is never empty");
        victim
    }

    fn reset(&mut self) {
        let ways = self.order.len() as u32;
        self.order = (0..ways).collect();
        self.filled = vec![false; ways as usize];
    }

    fn clone_fresh(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(FifoPolicy::new(self.order.len() as u32))
    }
}

/// Tree-based pseudo-LRU, the common hardware approximation of LRU.
///
/// Requires a power-of-two associativity.
#[derive(Debug, Clone)]
pub struct PseudoLruPolicy {
    ways: u32,
    /// Tree bits: node i has children 2i+1 and 2i+2; a bit of 0 means "the
    /// colder half is the left subtree".
    bits: Vec<bool>,
}

impl PseudoLruPolicy {
    /// Creates a tree PLRU policy for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or not a power of two.
    pub fn new(ways: u32) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        assert!(
            ways.is_power_of_two(),
            "tree pseudo-LRU requires a power-of-two associativity, got {ways}"
        );
        PseudoLruPolicy {
            ways,
            bits: vec![false; (ways as usize).saturating_sub(1)],
        }
    }
}

impl ReplacementPolicy for PseudoLruPolicy {
    fn touch(&mut self, way: u32) {
        assert!(way < self.ways, "touched way outside the set");
        if self.ways == 1 {
            return;
        }
        // Walk from the root towards the accessed leaf, pointing each node
        // away from the path taken (so the victim search goes elsewhere).
        let mut node = 0usize;
        let mut lo = 0u32;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            // Bit true means "victim search goes left"; since we went to one
            // side, point the victim search at the other side.
            self.bits[node] = go_right;
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    fn victim(&self) -> u32 {
        if self.ways == 1 {
            return 0;
        }
        let mut node = 0usize;
        let mut lo = 0u32;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_left = self.bits[node];
            node = 2 * node + if go_left { 1 } else { 2 };
            if go_left {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo
    }

    fn reset(&mut self) {
        for b in &mut self.bits {
            *b = false;
        }
    }

    fn clone_fresh(&self) -> Box<dyn ReplacementPolicy> {
        Box::new(PseudoLruPolicy::new(self.ways))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = LruPolicy::new(4);
        // Touch ways 0,1,2,3 in order: way 0 is now LRU.
        for w in 0..4 {
            p.touch(w);
        }
        assert_eq!(p.victim(), 0);
        p.touch(0);
        assert_eq!(p.victim(), 1);
    }

    #[test]
    fn lru_reset_restores_initial_order() {
        let mut p = LruPolicy::new(2);
        p.touch(1);
        p.reset();
        assert_eq!(p.victim(), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = FifoPolicy::new(2);
        p.touch(0); // fill way 0
        p.touch(1); // fill way 1
        p.touch(0); // hit on way 0: FIFO order unchanged
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn fifo_reset() {
        let mut p = FifoPolicy::new(4);
        p.touch(2);
        p.reset();
        // After reset nothing is filled; initial order has way 3 as victim.
        assert_eq!(p.victim(), 3);
    }

    #[test]
    fn plru_victim_is_not_most_recent() {
        let mut p = PseudoLruPolicy::new(8);
        for w in 0..8 {
            p.touch(w);
            assert_ne!(p.victim(), w, "PLRU must never pick the just-touched way");
        }
    }

    #[test]
    fn plru_single_way() {
        let mut p = PseudoLruPolicy::new(1);
        p.touch(0);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_requires_power_of_two() {
        PseudoLruPolicy::new(6);
    }

    #[test]
    fn clone_fresh_produces_reset_state() {
        let mut p = LruPolicy::new(4);
        p.touch(3);
        assert_eq!(
            p.victim(),
            2,
            "after touching 3, way 2 is at the LRU position"
        );
        let fresh = p.clone_fresh();
        assert_eq!(
            fresh.victim(),
            3,
            "fresh clone starts from the initial order (last way is LRU)"
        );
    }

    #[test]
    fn lru_full_access_sequence() {
        // Classic check: with 2 ways and accesses a,b,a,c the victim after
        // filling is b (a was refreshed).
        let mut p = LruPolicy::new(2);
        p.touch(0); // a
        p.touch(1); // b
        p.touch(0); // a again
        assert_eq!(p.victim(), 1);
    }

    #[test]
    #[should_panic(expected = "outside the set")]
    fn lru_touch_out_of_range_panics() {
        let mut p = LruPolicy::new(2);
        p.touch(5);
    }
}
