//! Cache geometry configuration.

use serde::{Deserialize, Serialize};

/// Geometry and latency of a single cache.
///
/// The named constructors provide the configurations of Table I of the
/// paper: a 32 KB / 8-way / 64 B-line I-cache with 1-cycle latency (the
/// baseline private I-cache and the 32 KB shared one), its 16 KB variant,
/// and the 1 MB / 32-way L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Line size in bytes (must be a power of two).
    pub line_size: u64,
    /// Access latency in cycles (hit latency).
    pub latency: u64,
}

impl CacheConfig {
    /// Creates a configuration after validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent: zero sizes, non-power-of-two
    /// line size or set count, or capacity not divisible by
    /// `associativity * line_size`.
    pub fn new(size_bytes: u64, associativity: u32, line_size: u64, latency: u64) -> Self {
        let cfg = CacheConfig {
            size_bytes,
            associativity,
            line_size,
            latency,
        };
        cfg.validate();
        cfg
    }

    /// The paper's standard 32 KB, 8-way, 64 B-line, 1-cycle I-cache.
    pub fn icache_32k() -> Self {
        CacheConfig::new(32 * 1024, 8, 64, 1)
    }

    /// The 16 KB shared I-cache variant evaluated in Figures 10–12.
    pub fn icache_16k() -> Self {
        CacheConfig::new(16 * 1024, 8, 64, 1)
    }

    /// The paper's 1 MB, 32-way, 20-cycle L2 cache.
    pub fn l2_1m() -> Self {
        CacheConfig::new(1024 * 1024, 32, 64, 20)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.associativity as u64 * self.line_size)
    }

    /// Number of lines the cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_size
    }

    /// Returns the set index for a line-aligned address.
    pub fn set_index(&self, line_addr: u64) -> u64 {
        (line_addr / self.line_size) % self.num_sets()
    }

    /// Returns the tag for a line-aligned address.
    pub fn tag(&self, line_addr: u64) -> u64 {
        (line_addr / self.line_size) / self.num_sets()
    }

    /// Returns a copy with a different capacity, keeping other parameters.
    ///
    /// # Panics
    ///
    /// Panics if the resulting geometry is invalid.
    pub fn with_size(&self, size_bytes: u64) -> Self {
        CacheConfig::new(size_bytes, self.associativity, self.line_size, self.latency)
    }

    fn validate(&self) {
        assert!(self.size_bytes > 0, "cache size must be positive");
        assert!(self.associativity > 0, "associativity must be positive");
        assert!(
            self.line_size.is_power_of_two(),
            "line size must be a power of two, got {}",
            self.line_size
        );
        assert!(
            self.size_bytes
                .is_multiple_of(self.associativity as u64 * self.line_size),
            "cache size {} is not divisible by associativity {} x line size {}",
            self.size_bytes,
            self.associativity,
            self.line_size
        );
        assert!(
            self.num_sets().is_power_of_two(),
            "number of sets must be a power of two, got {}",
            self.num_sets()
        );
    }
}

impl Default for CacheConfig {
    /// The default configuration is the paper's 32 KB I-cache.
    fn default() -> Self {
        CacheConfig::icache_32k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_configs_have_expected_geometry() {
        let c = CacheConfig::icache_32k();
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.num_lines(), 512);
        assert_eq!(c.latency, 1);

        let c16 = CacheConfig::icache_16k();
        assert_eq!(c16.num_sets(), 32);

        let l2 = CacheConfig::l2_1m();
        assert_eq!(l2.num_sets(), 512);
        assert_eq!(l2.latency, 20);
    }

    #[test]
    fn set_index_and_tag_partition_the_address() {
        let c = CacheConfig::icache_32k();
        let addr = 0x0004_5640u64; // line-aligned
        let set = c.set_index(addr);
        let tag = c.tag(addr);
        assert!(set < c.num_sets());
        // Reconstruct: (tag * num_sets + set) * line_size == addr
        assert_eq!((tag * c.num_sets() + set) * c.line_size, addr);
    }

    #[test]
    fn with_size_keeps_other_fields() {
        let c = CacheConfig::icache_32k().with_size(16 * 1024);
        assert_eq!(c, CacheConfig::icache_16k());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_bad_capacity() {
        CacheConfig::new(1000, 8, 64, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        CacheConfig::new(32 * 1024, 8, 48, 1);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn rejects_zero_associativity() {
        CacheConfig::new(32 * 1024, 0, 64, 1);
    }

    #[test]
    fn default_is_32k_icache() {
        assert_eq!(CacheConfig::default(), CacheConfig::icache_32k());
    }
}
