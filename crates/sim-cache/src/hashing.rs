//! Deterministic, allocation-free hashing for simulator-internal maps.
//!
//! The simulator's hash maps are keyed by line addresses and small indices,
//! with populations in the tens to thousands.  The standard library's SipHash
//! is both randomly seeded (which would make iteration order — and therefore
//! any code accidentally depending on it — nondeterministic across runs) and
//! needlessly slow for integer keys on the cycle-loop hot path.  This module
//! provides a fixed-seed multiply-shift hasher in the Fibonacci-hashing
//! family: one multiplication and one shift per `u64` key, identical output
//! on every run and platform.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for integer keys (deterministic, fixed seed).
///
/// `write_u64`/`write_usize` mix the key with a single multiplication by a
/// 64-bit odd constant (2^64 / φ) followed by an xor-shift, which is enough
/// to spread line addresses (always multiples of the line size) across
/// buckets.  The byte-slice fallback is an FNV-1a loop so arbitrary keys
/// still hash correctly, just not as fast.
#[derive(Debug, Default, Clone)]
pub struct LineHasher(u64);

const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, x: u64) {
        let h = (x ^ self.0).wrapping_mul(PHI);
        self.0 = h ^ (h >> 29);
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }
}

/// `BuildHasher` for [`LineHasher`]; use as the `S` parameter of
/// `HashMap`/`HashSet` keyed by integers.
pub type LineHashBuilder = BuildHasherDefault<LineHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn hash_u64(x: u64) -> u64 {
        let mut h = LineHasher::default();
        h.write_u64(x);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_u64(0x1000), hash_u64(0x1000));
        assert_ne!(hash_u64(0x1000), hash_u64(0x1040));
    }

    #[test]
    fn line_addresses_spread_across_low_bits() {
        // Line addresses are multiples of 64; a weak hash would leave the
        // low bits constant and collapse every key into one bucket.
        let buckets: HashSet<u64> = (0..1024u64).map(|i| hash_u64(i * 64) % 256).collect();
        assert!(buckets.len() > 128, "only {} buckets hit", buckets.len());
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut set: HashSet<u64, LineHashBuilder> = HashSet::default();
        for i in 0..100 {
            set.insert(i * 64);
        }
        assert_eq!(set.len(), 100);
        assert!(set.contains(&640));
        assert!(!set.contains(&641));
    }

    #[test]
    fn byte_slice_fallback_distinguishes_inputs() {
        let mut a = LineHasher::default();
        a.write(b"hello");
        let mut b = LineHasher::default();
        b.write(b"world");
        assert_ne!(a.finish(), b.finish());
    }
}
