//! Cache and memory models for the shared-I-cache ACMP simulator.
//!
//! This crate provides the storage-side building blocks of the simulated
//! machine:
//!
//! * [`SetAssocCache`] — a set-associative cache with pluggable replacement
//!   ([`replacement`]), per-access hit/miss classification (including
//!   compulsory vs non-compulsory misses, needed for the paper's Fig. 11
//!   analysis) and statistics.
//! * [`BankedCache`] — a multi-banked wrapper interleaving lines across
//!   banks (even/odd lines for the double-bus configuration of Section IV-B).
//! * [`Mshr`] — miss-status holding registers that merge concurrent requests
//!   for the same line; in a shared I-cache this is where cross-thread
//!   mutual prefetching becomes visible (a second core's request for a line
//!   already being fetched does not pay a second L2 round trip).
//! * [`L2Cache`] and [`Dram`] — the backing levels with the latencies of
//!   Table I (L2: 1 MB, 32-way, 20 cycles; DRAM: DDR3-1600-like timing).
//!
//! All caches here are *functional with latency parameters*: they answer
//! "hit or miss, and which miss class" immediately, and expose the latency
//! that the cycle-level machine model in `sim-acmp` charges.
//!
//! # Example
//!
//! ```
//! use sim_cache::{CacheConfig, SetAssocCache, AccessOutcome};
//!
//! let mut icache = SetAssocCache::new(CacheConfig::icache_32k());
//! let first = icache.access(0x1000);
//! assert!(matches!(first, AccessOutcome::Miss { .. }));
//! let second = icache.access(0x1000);
//! assert!(matches!(second, AccessOutcome::Hit));
//! ```

pub mod banked;
pub mod config;
pub mod dram;
pub mod hashing;
pub mod l2;
pub mod mshr;
pub mod replacement;
pub mod set_assoc;
pub mod stats;

pub use banked::BankedCache;
pub use config::CacheConfig;
pub use dram::{Dram, DramConfig};
pub use hashing::{LineHashBuilder, LineHasher};
pub use l2::{L2Cache, L2Config};
pub use mshr::{Mshr, MshrAllocation};
pub use replacement::{FifoPolicy, LruPolicy, PseudoLruPolicy, ReplacementPolicy};
pub use set_assoc::{AccessOutcome, MissKind, SetAssocCache};
pub use stats::CacheStats;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SetAssocCache>();
        assert_send_sync::<BankedCache>();
        assert_send_sync::<L2Cache>();
        assert_send_sync::<Dram>();
        assert_send_sync::<CacheStats>();
        assert_send_sync::<Mshr>();
    }
}
