//! Miss-status holding registers (MSHRs).
//!
//! When several cores share an I-cache, two cores frequently request the same
//! line within a few cycles of each other (they run the same parallel loop).
//! The MSHR file merges those requests: the second requester piggybacks on
//! the in-flight fill instead of issuing another L2 access.  This is one of
//! the two mechanisms behind the paper's "mutual prefetching" observation
//! (the other being that the first core's completed fill turns the second
//! core's would-be cold miss into a hit).

use serde::{Deserialize, Serialize};

/// Identifier of a requester (core index within the sharing group).
pub type RequesterId = usize;

/// Result of allocating a request into the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAllocation {
    /// No outstanding miss for this line existed; a new entry was created
    /// and the caller must issue the fill request to the next level.
    NewEntry,
    /// The line already has an in-flight fill; the requester was added to
    /// the existing entry and must *not* issue another fill.
    Merged,
    /// The MSHR file is full; the request must be retried later.
    Full,
}

/// Statistics of the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MshrStats {
    /// Fills issued to the next level (one per `NewEntry`).
    pub fills_issued: u64,
    /// Requests merged into an existing entry.
    pub merged_requests: u64,
    /// Allocations rejected because the file was full.
    pub full_stalls: u64,
}

#[derive(Debug)]
struct Entry {
    line: u64,
    waiters: Vec<RequesterId>,
}

/// A file of miss-status holding registers keyed by line address.
///
/// The file is tiny (typically 8 entries), so it is stored as a flat vector
/// scanned linearly — no hashing, and with [`Mshr::retire`] no allocation in
/// steady state either: waiter vectors are recycled through a small pool.
#[derive(Debug)]
pub struct Mshr {
    capacity: usize,
    entries: Vec<Entry>,
    /// Recycled waiter vectors, so steady-state misses do not allocate.
    waiter_pool: Vec<Vec<RequesterId>>,
    stats: MshrStats,
}

impl Mshr {
    /// Creates an MSHR file with room for `capacity` distinct outstanding
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        Mshr {
            capacity,
            entries: Vec::with_capacity(capacity),
            waiter_pool: Vec::with_capacity(capacity),
            stats: MshrStats::default(),
        }
    }

    /// Number of outstanding lines.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if there is an in-flight fill for `line_addr`.
    pub fn is_pending(&self, line_addr: u64) -> bool {
        self.entries.iter().any(|e| e.line == line_addr)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MshrStats {
        &self.stats
    }

    /// Registers a miss for `line_addr` on behalf of `requester`.
    pub fn allocate(&mut self, line_addr: u64, requester: RequesterId) -> MshrAllocation {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.line == line_addr) {
            entry.waiters.push(requester);
            self.stats.merged_requests += 1;
            return MshrAllocation::Merged;
        }
        if self.entries.len() >= self.capacity {
            self.stats.full_stalls += 1;
            return MshrAllocation::Full;
        }
        let mut waiters = self.waiter_pool.pop().unwrap_or_default();
        waiters.push(requester);
        self.entries.push(Entry {
            line: line_addr,
            waiters,
        });
        self.stats.fills_issued += 1;
        MshrAllocation::NewEntry
    }

    /// Completes the fill for `line_addr` and returns every requester that
    /// was waiting on it (in allocation order).
    ///
    /// Returns an empty vector if no entry existed (e.g. the fill was for a
    /// prefetch that was cancelled).
    pub fn complete(&mut self, line_addr: u64) -> Vec<RequesterId> {
        match self.entries.iter().position(|e| e.line == line_addr) {
            Some(idx) => self.entries.swap_remove(idx).waiters,
            None => Vec::new(),
        }
    }

    /// Completes the fill for `line_addr`, discarding the waiter list.
    ///
    /// Equivalent to [`Mshr::complete`] for callers that track waiters
    /// themselves, but recycles the entry's waiter vector instead of handing
    /// it out, so it never allocates.
    pub fn retire(&mut self, line_addr: u64) {
        if let Some(idx) = self.entries.iter().position(|e| e.line == line_addr) {
            let mut entry = self.entries.swap_remove(idx);
            entry.waiters.clear();
            self.waiter_pool.push(entry.waiters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_allocation_creates_entry_second_merges() {
        let mut m = Mshr::new(4);
        assert_eq!(m.allocate(0x1000, 0), MshrAllocation::NewEntry);
        assert_eq!(m.allocate(0x1000, 1), MshrAllocation::Merged);
        assert_eq!(m.allocate(0x1000, 2), MshrAllocation::Merged);
        assert!(m.is_pending(0x1000));
        assert_eq!(m.outstanding(), 1);
        assert_eq!(m.stats().fills_issued, 1);
        assert_eq!(m.stats().merged_requests, 2);
    }

    #[test]
    fn complete_returns_all_waiters_in_order() {
        let mut m = Mshr::new(4);
        m.allocate(0x1000, 3);
        m.allocate(0x1000, 5);
        let waiters = m.complete(0x1000);
        assert_eq!(waiters, vec![3, 5]);
        assert!(!m.is_pending(0x1000));
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    fn full_file_rejects_new_lines_but_still_merges() {
        let mut m = Mshr::new(2);
        assert_eq!(m.allocate(0x1000, 0), MshrAllocation::NewEntry);
        assert_eq!(m.allocate(0x2000, 0), MshrAllocation::NewEntry);
        assert_eq!(m.allocate(0x3000, 0), MshrAllocation::Full);
        assert_eq!(m.allocate(0x1000, 1), MshrAllocation::Merged);
        assert_eq!(m.stats().full_stalls, 1);
    }

    #[test]
    fn complete_unknown_line_returns_empty() {
        let mut m = Mshr::new(1);
        assert!(m.complete(0xdead).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Mshr::new(0);
    }

    #[test]
    fn capacity_frees_after_completion() {
        let mut m = Mshr::new(1);
        assert_eq!(m.allocate(0x1000, 0), MshrAllocation::NewEntry);
        assert_eq!(m.allocate(0x2000, 0), MshrAllocation::Full);
        m.complete(0x1000);
        assert_eq!(m.allocate(0x2000, 0), MshrAllocation::NewEntry);
    }
}
