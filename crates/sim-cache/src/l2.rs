//! Unified second-level cache model.
//!
//! The paper's Table I specifies a private 1 MB, 32-way L2 per core with a
//! 20-cycle access latency and a 32 B bus to DRAM.  The L2 here serves only
//! instruction fills (the data side is folded into the measured back-end
//! IPC, exactly as in the paper's methodology), so its main role is to supply
//! the latency of I-cache misses.

use crate::config::CacheConfig;
use crate::dram::{Dram, DramConfig};
use crate::set_assoc::{AccessOutcome, SetAssocCache};
use crate::stats::CacheStats;
use serde::{Deserialize, Serialize};

/// Configuration of the L2 + memory path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L2Config {
    /// L2 geometry and hit latency (Table I: 1 MB, 32-way, 20 cycles).
    pub cache: CacheConfig,
    /// Latency of the L2-to-DRAM bus in cycles (Table I: 4 cycles), charged
    /// on each L2 miss in addition to the DRAM access time.
    pub dram_bus_latency: u64,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            cache: CacheConfig::l2_1m(),
            dram_bus_latency: 4,
            dram: DramConfig::ddr3_1600(),
        }
    }
}

/// An L2 cache backed by DRAM; returns the total fill latency for each
/// instruction-fetch miss handed to it.
#[derive(Debug)]
pub struct L2Cache {
    config: L2Config,
    cache: SetAssocCache,
    dram: Dram,
}

impl L2Cache {
    /// Creates an L2 with the given configuration.
    pub fn new(config: L2Config) -> Self {
        L2Cache {
            config,
            cache: SetAssocCache::new(config.cache),
            dram: Dram::new(config.dram),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &L2Config {
        &self.config
    }

    /// L2 hit/miss statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Services a fill request for the line containing `addr`, returning the
    /// number of cycles until the line is available at the L2's interface
    /// (L2 hit latency, plus the DRAM round trip on an L2 miss).
    pub fn fill(&mut self, addr: u64) -> u64 {
        let outcome = self.cache.access(addr);
        let mut latency = self.config.cache.latency;
        if let AccessOutcome::Miss { .. } = outcome {
            latency += self.config.dram_bus_latency + self.dram.access(addr);
        }
        latency
    }

    /// Non-mutating residency check.
    pub fn probe(&self, addr: u64) -> bool {
        self.cache.probe(addr)
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> &crate::dram::DramStats {
        self.dram.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_hit_costs_only_l2_latency() {
        let mut l2 = L2Cache::new(L2Config::default());
        let first = l2.fill(0x1000);
        assert!(first > 20, "cold fill goes to DRAM: {first}");
        let second = l2.fill(0x1000);
        assert_eq!(second, 20, "L2 hit costs the 20-cycle L2 latency");
    }

    #[test]
    fn l2_miss_includes_dram_and_bus() {
        let cfg = L2Config::default();
        let mut l2 = L2Cache::new(cfg);
        let latency = l2.fill(0x8_0000);
        assert!(
            latency >= cfg.cache.latency + cfg.dram_bus_latency + 20,
            "L2 miss latency {latency} should include bus and DRAM time"
        );
        assert_eq!(l2.stats().misses, 1);
    }

    #[test]
    fn small_instruction_footprint_stays_in_l2() {
        let mut l2 = L2Cache::new(L2Config::default());
        // 128 KB of code: fits easily in a 1 MB L2.
        let lines: Vec<u64> = (0..2048u64).map(|i| i * 64).collect();
        for &l in &lines {
            l2.fill(l);
        }
        let cold_misses = l2.stats().misses;
        for &l in &lines {
            l2.fill(l);
        }
        assert_eq!(l2.stats().misses, cold_misses);
        assert!(l2.probe(0));
    }

    #[test]
    fn default_config_matches_table_one() {
        let cfg = L2Config::default();
        assert_eq!(cfg.cache.size_bytes, 1024 * 1024);
        assert_eq!(cfg.cache.associativity, 32);
        assert_eq!(cfg.cache.latency, 20);
        assert_eq!(cfg.dram_bus_latency, 4);
    }
}
