//! Set-associative cache model.

use crate::config::CacheConfig;
use crate::hashing::LineHashBuilder;
use crate::replacement::{LruPolicy, ReplacementPolicy};
use crate::stats::CacheStats;
use std::collections::HashSet;

/// Classification of a miss (used by the Fig. 11 miss analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// The line was never referenced before by this cache (cold miss).
    Compulsory,
    /// The line was referenced before but is no longer resident
    /// (capacity or conflict miss).
    NonCompulsory,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line is resident.
    Hit,
    /// The line is not resident and was (functionally) filled by this access.
    Miss {
        /// Cold vs capacity/conflict classification.
        kind: MissKind,
        /// Line address evicted to make room, if a valid line was displaced.
        evicted: Option<u64>,
    },
}

impl AccessOutcome {
    /// Returns `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// A set-associative cache with allocate-on-miss fill policy.
///
/// Addresses passed to [`SetAssocCache::access`] may be arbitrary byte
/// addresses; they are aligned down to the configured line size internally.
///
/// Tags are stored struct-of-arrays style in one flat allocation indexed
/// `set * associativity + way`, so the hit-path scan touches contiguous
/// memory instead of chasing one heap pointer per set.
#[derive(Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `tags[set * assoc + way]` is `Some(tag)` when the way holds a valid
    /// line.
    tags: Vec<Option<u64>>,
    /// One replacement policy per set.
    policies: Vec<Box<dyn ReplacementPolicy>>,
    stats: CacheStats,
    /// All line addresses ever referenced, for compulsory-miss
    /// classification.
    ever_seen: HashSet<u64, LineHashBuilder>,
}

impl SetAssocCache {
    /// Creates a cache with LRU replacement.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_policy(config, &LruPolicy::new(config.associativity))
    }

    /// Creates a cache with the given replacement policy (cloned per set).
    pub fn with_policy(config: CacheConfig, policy: &dyn ReplacementPolicy) -> Self {
        let num_sets = config.num_sets() as usize;
        let assoc = config.associativity as usize;
        SetAssocCache {
            config,
            tags: vec![None; num_sets * assoc],
            policies: (0..num_sets).map(|_| policy.clone_fresh()).collect(),
            stats: CacheStats::default(),
            ever_seen: HashSet::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    /// Looks up (and on a miss, fills) the line containing `addr`.
    ///
    /// Returns whether the access hit, and on a miss its classification and
    /// any eviction.  Statistics are updated.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        let line = addr & !(self.config.line_size - 1);
        self.stats.accesses += 1;

        let set_idx = self.config.set_index(line) as usize;
        let tag = self.config.tag(line);
        let assoc = self.config.associativity as usize;
        let ways = &mut self.tags[set_idx * assoc..(set_idx + 1) * assoc];
        let policy = &mut self.policies[set_idx];

        if let Some(way) = ways.iter().position(|t| *t == Some(tag)) {
            policy.touch(way as u32);
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }

        // Miss: classify, then fill.
        let kind = if self.ever_seen.insert(line) {
            self.stats.compulsory_misses += 1;
            MissKind::Compulsory
        } else {
            self.stats.non_compulsory_misses += 1;
            MissKind::NonCompulsory
        };
        self.stats.misses += 1;

        let (way, evicted) = match ways.iter().position(|t| t.is_none()) {
            Some(invalid_way) => (invalid_way as u32, None),
            None => {
                let victim = policy.victim();
                let old_tag = ways[victim as usize].expect("victim way must be valid");
                let evicted_line =
                    (old_tag * self.config.num_sets() + set_idx as u64) * self.config.line_size;
                self.stats.evictions += 1;
                (victim, Some(evicted_line))
            }
        };
        ways[way as usize] = Some(tag);
        policy.touch(way);

        AccessOutcome::Miss { kind, evicted }
    }

    /// Looks up the line containing `addr` without modifying any state
    /// (no fill, no statistics, no recency update).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr & !(self.config.line_size - 1);
        let set_idx = self.config.set_index(line) as usize;
        let tag = self.config.tag(line);
        let assoc = self.config.associativity as usize;
        self.tags[set_idx * assoc..(set_idx + 1) * assoc].contains(&Some(tag))
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> u64 {
        self.tags.iter().filter(|t| t.is_some()).count() as u64
    }

    /// Invalidates all lines and clears recency state; statistics and the
    /// compulsory-miss history are preserved.
    pub fn flush(&mut self) {
        for t in &mut self.tags {
            *t = None;
        }
        for policy in &mut self.policies {
            policy.reset();
        }
    }

    /// Resets statistics (and the compulsory-miss history).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.ever_seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::FifoPolicy;

    fn tiny_cache() -> SetAssocCache {
        // 2 sets x 2 ways x 64 B lines = 256 B.
        SetAssocCache::new(CacheConfig::new(256, 2, 64, 1))
    }

    #[test]
    fn first_access_is_compulsory_miss_then_hit() {
        let mut c = tiny_cache();
        match c.access(0x1000) {
            AccessOutcome::Miss { kind, evicted } => {
                assert_eq!(kind, MissKind::Compulsory);
                assert!(evicted.is_none());
            }
            other => panic!("expected miss, got {other:?}"),
        }
        assert!(c.access(0x1000).is_hit());
        assert!(c.access(0x103f).is_hit(), "same line, different offset");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_and_non_compulsory_classification() {
        let mut c = tiny_cache();
        // Three lines mapping to the same set (set stride = 2 lines = 128 B).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a);
        c.access(b);
        // Set is full (2 ways); accessing d evicts a (LRU).
        match c.access(d) {
            AccessOutcome::Miss { evicted, .. } => assert_eq!(evicted, Some(a)),
            other => panic!("expected miss, got {other:?}"),
        }
        // Re-access a: it was seen before, so the miss is non-compulsory.
        match c.access(a) {
            AccessOutcome::Miss { kind, .. } => assert_eq!(kind, MissKind::NonCompulsory),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().compulsory_misses, 3);
        assert_eq!(c.stats().non_compulsory_misses, 1);
    }

    #[test]
    fn lru_keeps_recently_used_line() {
        let mut c = tiny_cache();
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a);
        c.access(b);
        c.access(a); // refresh a; b becomes LRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = tiny_cache();
        c.access(0x0000);
        let before = *c.stats();
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x4000));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let cfg = CacheConfig::icache_32k();
        let mut c = SetAssocCache::new(cfg);
        let lines: Vec<u64> = (0..cfg.num_lines()).map(|i| i * cfg.line_size).collect();
        for &l in &lines {
            c.access(l);
        }
        let warm_misses = c.stats().misses;
        for _ in 0..10 {
            for &l in &lines {
                assert!(c.access(l).is_hit());
            }
        }
        assert_eq!(c.stats().misses, warm_misses, "no misses after warm-up");
        assert_eq!(c.resident_lines(), cfg.num_lines());
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes_with_lru() {
        // Classic LRU pathology: cyclic access to capacity+1 lines in one set
        // misses every time after warm-up.
        let cfg = CacheConfig::new(256, 2, 64, 1);
        let mut c = SetAssocCache::new(cfg);
        let set_stride = cfg.num_sets() * cfg.line_size;
        let lines = [0u64, set_stride, 2 * set_stride];
        for _ in 0..5 {
            for &l in &lines {
                c.access(l);
            }
        }
        assert_eq!(
            c.stats().hits,
            0,
            "cyclic over-capacity pattern never hits under LRU"
        );
    }

    #[test]
    fn flush_invalidates_but_keeps_history() {
        let mut c = tiny_cache();
        c.access(0x0000);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        match c.access(0x0000) {
            AccessOutcome::Miss { kind, .. } => assert_eq!(kind, MissKind::NonCompulsory),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn reset_stats_clears_history() {
        let mut c = tiny_cache();
        c.access(0x0000);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        c.flush();
        match c.access(0x0000) {
            AccessOutcome::Miss { kind, .. } => assert_eq!(kind, MissKind::Compulsory),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn fifo_policy_integration() {
        let cfg = CacheConfig::new(256, 2, 64, 1);
        let mut c = SetAssocCache::with_policy(cfg, &FifoPolicy::new(2));
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a);
        c.access(b);
        c.access(a); // hit does not refresh FIFO order
        c.access(d); // evicts a (oldest insertion)
        assert!(!c.probe(a));
        assert!(c.probe(b));
    }

    #[test]
    fn mpki_matches_misses() {
        let mut c = tiny_cache();
        for i in 0..100u64 {
            c.access(i * 64);
        }
        let mpki = c.stats().mpki(10_000);
        assert!((mpki - c.stats().misses as f64 * 0.1).abs() < 1e-12);
    }
}
