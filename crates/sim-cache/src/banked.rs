//! Multi-banked cache wrapper.
//!
//! Section IV-B of the paper proposes a multi-banked shared I-cache where
//! lines are interleaved across banks (even lines in one bank, odd lines in
//! the other for two banks) and every bank has its own bus.  The banking
//! only affects *which bus a request uses* and *which requests can be served
//! in the same cycle*; the storage is still one logical cache, so capacity
//! and replacement behave exactly as an equally sized monolithic cache.
//!
//! [`BankedCache`] therefore wraps a single [`SetAssocCache`] and exposes the
//! line-to-bank mapping plus per-bank statistics.

use crate::config::CacheConfig;
use crate::replacement::ReplacementPolicy;
use crate::set_assoc::{AccessOutcome, SetAssocCache};
use crate::stats::CacheStats;

/// A logically shared cache whose lines are interleaved across banks.
#[derive(Debug)]
pub struct BankedCache {
    inner: SetAssocCache,
    num_banks: u32,
    per_bank: Vec<CacheStats>,
}

impl BankedCache {
    /// Creates a banked cache with LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` is zero or not a power of two.
    pub fn new(config: CacheConfig, num_banks: u32) -> Self {
        assert!(
            num_banks > 0 && num_banks.is_power_of_two(),
            "number of banks must be a non-zero power of two, got {num_banks}"
        );
        BankedCache {
            inner: SetAssocCache::new(config),
            num_banks,
            per_bank: vec![CacheStats::default(); num_banks as usize],
        }
    }

    /// Creates a banked cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` is zero or not a power of two.
    pub fn with_policy(
        config: CacheConfig,
        num_banks: u32,
        policy: &dyn ReplacementPolicy,
    ) -> Self {
        assert!(
            num_banks > 0 && num_banks.is_power_of_two(),
            "number of banks must be a non-zero power of two, got {num_banks}"
        );
        BankedCache {
            inner: SetAssocCache::with_policy(config, policy),
            num_banks,
            per_bank: vec![CacheStats::default(); num_banks as usize],
        }
    }

    /// Number of banks.
    pub fn num_banks(&self) -> u32 {
        self.num_banks
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        self.inner.config()
    }

    /// Returns the bank serving the line that contains `addr`
    /// (line-index modulo the number of banks, i.e. even/odd interleaving
    /// for two banks).
    pub fn bank_of(&self, addr: u64) -> u32 {
        let line_index = addr / self.inner.config().line_size;
        (line_index % self.num_banks as u64) as u32
    }

    /// Accesses the line containing `addr`; equivalent to
    /// [`SetAssocCache::access`] plus per-bank accounting.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        let bank = self.bank_of(addr) as usize;
        let outcome = self.inner.access(addr);
        let s = &mut self.per_bank[bank];
        s.accesses += 1;
        match outcome {
            AccessOutcome::Hit => s.hits += 1,
            AccessOutcome::Miss { .. } => s.misses += 1,
        }
        outcome
    }

    /// Non-mutating residency check.
    pub fn probe(&self, addr: u64) -> bool {
        self.inner.probe(addr)
    }

    /// Aggregate statistics over all banks.
    pub fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    /// Per-bank statistics (accesses/hits/misses attributed to each bank).
    pub fn bank_stats(&self) -> &[CacheStats] {
        &self.per_bank
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.inner.latency()
    }

    /// Access to the underlying cache (e.g. for flushing in tests).
    pub fn inner_mut(&mut self) -> &mut SetAssocCache {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_odd_interleaving_with_two_banks() {
        let c = BankedCache::new(CacheConfig::icache_32k(), 2);
        assert_eq!(c.bank_of(0x0000), 0);
        assert_eq!(c.bank_of(0x0040), 1);
        assert_eq!(c.bank_of(0x0080), 0);
        assert_eq!(c.bank_of(0x00c0), 1);
        // Offsets within a line do not change the bank.
        assert_eq!(c.bank_of(0x0041), 1);
    }

    #[test]
    fn single_bank_maps_everything_to_bank_zero() {
        let c = BankedCache::new(CacheConfig::icache_32k(), 1);
        for addr in [0x0u64, 0x40, 0x1234, 0xffff] {
            assert_eq!(c.bank_of(addr), 0);
        }
    }

    #[test]
    fn per_bank_stats_accumulate() {
        let mut c = BankedCache::new(CacheConfig::icache_32k(), 2);
        c.access(0x0000); // bank 0 miss
        c.access(0x0000); // bank 0 hit
        c.access(0x0040); // bank 1 miss
        let b = c.bank_stats();
        assert_eq!(b[0].accesses, 2);
        assert_eq!(b[0].hits, 1);
        assert_eq!(b[1].accesses, 1);
        assert_eq!(b[1].misses, 1);
        assert_eq!(c.stats().accesses, 3);
    }

    #[test]
    fn banking_does_not_change_miss_behaviour() {
        // The same access stream produces identical aggregate stats with 1,
        // 2 and 4 banks (banking only affects bus routing, not storage).
        let addrs: Vec<u64> = (0..4096u64).map(|i| (i * 67) % (64 * 1024)).collect();
        let mut results = Vec::new();
        for banks in [1u32, 2, 4] {
            let mut c = BankedCache::new(CacheConfig::icache_16k(), banks);
            for &a in &addrs {
                c.access(a);
            }
            results.push(*c.stats());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_three_banks() {
        BankedCache::new(CacheConfig::icache_32k(), 3);
    }

    #[test]
    fn probe_and_flush_via_inner() {
        let mut c = BankedCache::new(CacheConfig::icache_32k(), 2);
        c.access(0x1000);
        assert!(c.probe(0x1000));
        c.inner_mut().flush();
        assert!(!c.probe(0x1000));
        assert_eq!(c.latency(), 1);
        assert_eq!(c.num_banks(), 2);
    }
}
