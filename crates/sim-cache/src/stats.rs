//! Cache access statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a cache over a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total number of lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Misses to lines never seen before by this cache (cold/compulsory).
    pub compulsory_misses: u64,
    /// Misses to lines that were previously resident and were evicted
    /// (capacity/conflict).
    pub non_compulsory_misses: u64,
    /// Number of evictions of valid lines.
    pub evictions: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Hit ratio in `[0, 1]`; 0 if there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss ratio in `[0, 1]`; 0 if there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per kilo-instruction given the number of committed
    /// instructions the cache served (the paper's MPKI metric).
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.compulsory_misses += other.compulsory_misses;
        self.non_compulsory_misses += other.non_compulsory_misses;
        self.evictions += other.evictions;
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        let mut out = self;
        out.merge(&rhs);
        out
    }
}

impl std::iter::Sum for CacheStats {
    fn sum<I: Iterator<Item = CacheStats>>(iter: I) -> CacheStats {
        iter.fold(CacheStats::default(), |acc, s| acc + s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheStats {
        CacheStats {
            accesses: 1000,
            hits: 900,
            misses: 100,
            compulsory_misses: 40,
            non_compulsory_misses: 60,
            evictions: 55,
        }
    }

    #[test]
    fn ratios() {
        let s = sample();
        assert!((s.hit_ratio() - 0.9).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mpki_uses_instruction_count() {
        let s = sample();
        assert!((s.mpki(50_000) - 2.0).abs() < 1e-12);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = CacheStats::new();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.miss_ratio(), 0.0);
    }

    #[test]
    fn merge_and_sum() {
        let total: CacheStats = vec![sample(), sample()].into_iter().sum();
        assert_eq!(total.accesses, 2000);
        assert_eq!(total.misses, 200);
        assert_eq!(total.compulsory_misses, 80);
        let added = sample() + sample();
        assert_eq!(added, total);
    }
}
