//@ path: crates/acmp-store/src/corpus_waived.rs
// Waiver fixture: a justified waiver suppresses its finding; a waiver
// without a justification is itself an error (and suppresses nothing);
// a waiver that matches nothing is a warning.

pub fn stamp() -> std::time::SystemTime {
    // acmp-lint: allow(nondeterminism) -- feeds a log line only, never simulated state
    std::time::SystemTime::now()
}

pub fn first(cells: &[u64]) -> u64 {
    // acmp-lint: allow(unwrap-in-lib)
    *cells.first().unwrap()
}

pub fn nothing_to_waive() -> u64 {
    // acmp-lint: allow(raw-stderr) -- justified, but there is no finding here
    7
}
