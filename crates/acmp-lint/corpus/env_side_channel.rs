//@ path: crates/acmp-store/src/corpus.rs
// Known-bad fixture for `env-side-channel`: library code reading the
// process environment.  Bins and examples are exempt (they parse CLI
// options), as is test code.

pub fn cache_dir() -> Option<String> {
    std::env::var("ACMP_CACHE_DIR").ok()
}

pub fn sniff() -> bool {
    std::env::var_os("ACMP_FAST_MODE").is_some()
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_is_fine_in_tests() {
        let _ = std::env::var("HOME");
    }
}
