//@ path: crates/sim-core/src/corpus.rs
// Known-bad fixture for the `nondeterminism` rule: every ambient-state
// read in deterministic simulation code is a finding; the same calls in
// test code are not.

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn tick() -> std::time::Instant {
    let started = Instant::now();
    started
}

pub fn who() -> std::thread::Thread {
    thread::current()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_are_fine_in_tests() {
        let _ = std::time::Instant::now();
        let _ = std::thread::current();
    }
}
