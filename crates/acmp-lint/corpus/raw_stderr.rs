//@ path: crates/acmp-obs/src/corpus.rs
// Known-bad fixture for `raw-stderr`: direct stderr printing outside the
// sweep CLI bypasses the observability layer.

pub fn report(done: usize, total: usize) {
    eprintln!("[{done}/{total}] working");
}

pub fn partial(text: &str) {
    eprint!("{text}");
}

pub fn fine(text: &str) {
    // The sanctioned route: identical stderr bytes, plus a trace event.
    acmp_obs::logline!("{text}");
}
