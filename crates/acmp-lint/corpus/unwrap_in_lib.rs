//@ path: crates/acmp-sweep/src/corpus.rs
// Known-bad fixture for `unwrap-in-lib`: panicking escapes in sweep/store
// library code.  Test code may unwrap freely.

pub fn first_cell(cells: &[u64]) -> u64 {
    *cells.first().unwrap()
}

pub fn parse_budget(text: &str) -> u64 {
    text.parse().expect("budget must be numeric")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let cells = vec![1u64];
        assert_eq!(*cells.first().unwrap(), 1);
    }
}
