//@ path: crates/core/tests/corpus_fixtures.rs
// Known-bad fixture for `fixture-bless`: test code rewriting the golden
// fixtures without the explicit UPDATE_FIXTURES bless gate.

#[test]
fn ungated_write_is_a_finding() {
    let rows = render_rows();
    std::fs::write("tests/fixtures/fig09.jsonl", rows).unwrap();
}

#[test]
fn tainted_binding_is_a_finding_too() {
    let path = std::path::Path::new("tests/fixtures").join("fig10.jsonl");
    let rows = render_rows();
    std::fs::write(path, rows).unwrap();
}

#[test]
fn gated_bless_is_fine() {
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write("tests/fixtures/fig09.jsonl", render_rows()).unwrap();
    }
}

#[test]
fn reading_fixtures_is_fine() {
    let rows = std::fs::read_to_string("tests/fixtures/fig09.jsonl").unwrap();
    assert!(!rows.is_empty());
}
