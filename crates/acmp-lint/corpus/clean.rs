//@ path: crates/acmp-store/src/corpus_clean.rs
// Clean fixture: storage-layer library code that honours every rule.
// Expected diagnostics: none.

pub fn live_fraction(live: u64, total: u64) -> f64 {
    if total == 0 {
        return 1.0;
    }
    live as f64 / total as f64
}

pub fn first_cell(cells: &[u64]) -> Option<u64> {
    cells.first().copied()
}

pub fn log_progress(done: usize, total: usize) {
    acmp_obs::logline!("[{done}/{total}] folded");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        assert_eq!(live_fraction(0, 0), 1.0);
        assert_eq!(live_fraction(1, 2), 0.5);
    }
}
