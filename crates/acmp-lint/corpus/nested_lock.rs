//@ path: crates/acmp-store/src/corpus_locks.rs
// Known-bad fixture for `nested-lock`: a second workspace lock taken
// while one is syntactically held in the same function.

pub struct S;

impl S {
    fn nested_guard(&self) {
        let inner = self.inner.lock();
        let shard = self.shards.lock();
        drop(shard);
        drop(inner);
    }

    fn same_statement(&self) {
        combine(self.inner.lock(), self.shards.lock());
    }

    fn released_first_is_fine(&self) {
        let inner = self.inner.lock();
        drop(inner);
        let shard = self.shards.lock();
        drop(shard);
    }

    fn scoped_release_is_fine(&self) {
        {
            let inner = self.inner.lock();
            touch(&inner);
        }
        let shard = self.shards.lock();
        drop(shard);
    }

    fn unknown_receivers_are_ignored(&self) {
        let a = self.gizmo.lock();
        let b = self.widget.lock();
        drop(b);
        drop(a);
    }
}
