//@ path: crates/acmp-sweep/src/corpus.rs
// Known-bad fixture for `schema-literal`: inline copies of the versioned
// schema names and store filename patterns.  Only the defining modules
// (acmp-obs/src/{trace,metrics}.rs, acmp-store/src/{segment,index}.rs)
// may spell these.

pub fn trace_header() -> &'static str {
    "acmp-obs-trace/v1"
}

pub fn metrics_header() -> String {
    format!("{{\"schema\":\"acmp-obs-metrics/v2\"}}")
}

pub fn segment_name(seq: u64) -> String {
    format!("seg-{seq:08}-0-0000.seg")
}

pub fn index_name() -> &'static str {
    "idx-0001.idx"
}

pub fn unversioned_is_not_a_schema() -> &'static str {
    // No digit after the `v`, so this is prose, not a schema id.
    "acmp-obs-trace/vNEXT"
}
