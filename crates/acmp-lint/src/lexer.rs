//! A hand-rolled token-level Rust lexer.
//!
//! This is not a full Rust parser — it is exactly enough lexical structure
//! for reliable token-level lint rules: comments (line, nested block),
//! string literals (plain, raw with any hash count, byte), char literals
//! vs. lifetimes, identifiers (including raw `r#ident`), numbers and
//! single-character punctuation.  Every byte of the input is covered by
//! exactly one token (whitespace included), so token spans partition the
//! file and concatenating the token texts reproduces the input byte for
//! byte — the property the lexer proptest pins.
//!
//! Malformed input never panics: an unterminated literal or comment simply
//! extends to end of file (or end of line for char literals), mirroring
//! how rustc recovers, and anything unrecognisable becomes a one-character
//! `Punct` token.

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace.
    Whitespace,
    /// `// …` to the end of the line (newline excluded), including doc
    /// comments (`///`, `//!`).
    LineComment,
    /// `/* … */`, nested, including doc block comments.  Unterminated
    /// comments extend to end of input.
    BlockComment,
    /// An identifier or keyword, including raw identifiers (`r#fn`).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A numeric literal (loose: suffixes and a single decimal point are
    /// folded in; exact numeric grammar is irrelevant to the lint rules).
    Number,
    /// A plain or byte string literal (`"…"`, `b"…"`), escapes handled.
    Str,
    /// A raw string literal (`r"…"`, `r#"…"#`, `br##"…"##`).
    RawStr,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: a kind plus its byte span and 1-based position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within `source` (the string it was lexed from).
    #[must_use]
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }
}

/// Lexes `text` into a complete, gap-free token list.
#[must_use]
pub fn lex(text: &str) -> Vec<Token> {
    Lexer::new(text).run()
}

struct Lexer<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            text,
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// The char starting at byte offset `at`, if `at` is a char boundary.
    fn char_at(&self, at: usize) -> Option<char> {
        self.text.get(at..).and_then(|s| s.chars().next())
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always advance");
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        self.tokens
    }

    /// Consumes one token's worth of input and returns its kind.
    fn next_kind(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => self.whitespace(),
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' => self.maybe_prefixed_literal(),
            b'0'..=b'9' => self.number(),
            _ => {
                if let Some(c) = self.char_at(self.pos) {
                    if c == '_' || c.is_alphabetic() {
                        return self.ident();
                    }
                    self.advance_char(c);
                } else {
                    // Mid-UTF-8 continuation byte: structurally unreachable
                    // (every arm consumes whole chars), but stay total.
                    self.advance_bytes(1);
                }
                TokenKind::Punct
            }
        }
    }

    fn whitespace(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.advance_bytes(1);
            } else {
                break;
            }
        }
        TokenKind::Whitespace
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.advance_bytes(1);
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.advance_bytes(2); // consume `/*`
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.advance_bytes(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.advance_bytes(2);
                }
                (Some(_), _) => self.advance_bytes(1),
                (None, _) => break, // unterminated: extend to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// A plain string body, the opening `"` already at `self.pos`.
    fn string(&mut self) -> TokenKind {
        self.advance_bytes(1); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    // An escape consumes the backslash and the next char
                    // (if any) — `\"` must not close the literal.
                    self.advance_bytes(1);
                    if let Some(c) = self.char_at(self.pos) {
                        self.advance_char(c);
                    }
                }
                b'"' => {
                    self.advance_bytes(1);
                    break;
                }
                _ => self.advance_bytes(1),
            }
        }
        TokenKind::Str
    }

    /// `'` at `self.pos`: disambiguates lifetimes from char literals the
    /// way rustc does — `'` + ident-start not followed by a closing `'`
    /// is a lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let after_quote = self.char_at(self.pos + 1);
        if let Some(c) = after_quote {
            let ident_start = c == '_' || c.is_alphabetic();
            let closes = self
                .char_at(self.pos + 1 + c.len_utf8())
                .is_some_and(|n| n == '\'');
            if ident_start && !closes {
                // Lifetime: consume `'` plus the identifier.
                self.advance_bytes(1);
                return self.ident_continue_as(TokenKind::Lifetime);
            }
        }
        // Char literal: consume up to the closing quote, stopping at a
        // newline or EOF so a stray `'` cannot swallow the rest of the
        // file.
        self.advance_bytes(1);
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.advance_bytes(1);
                    if let Some(c) = self.char_at(self.pos) {
                        self.advance_char(c);
                    }
                }
                b'\'' => {
                    self.advance_bytes(1);
                    break;
                }
                b'\n' => break, // unterminated
                _ => {
                    let c = self.char_at(self.pos).unwrap_or('\0');
                    self.advance_char(c);
                }
            }
        }
        TokenKind::Char
    }

    /// `r` or `b` at `self.pos`: raw strings (`r"`, `r#"`), byte strings
    /// (`b"`, `br"`, `br#"`), byte chars (`b'`), raw identifiers (`r#x`) —
    /// or just an identifier starting with that letter.
    fn maybe_prefixed_literal(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        // Collect the full prefix of `r`/`b` letters (covers r, b, br, rb).
        let mut prefix_len = 1;
        if (b == b'b' && self.peek(1) == Some(b'r')) || (b == b'r' && self.peek(1) == Some(b'b')) {
            prefix_len = 2;
        }
        let raw = self.bytes[self.pos..self.pos + prefix_len].contains(&b'r');
        match self.peek(prefix_len) {
            Some(b'"') if raw => return self.raw_string(prefix_len, 0),
            Some(b'"') => {
                // b"…" — a plain (escaped) byte string.
                self.advance_bytes(prefix_len);
                return self.string();
            }
            Some(b'\'') if b == b'b' && prefix_len == 1 => {
                // b'…' — a byte char.
                self.advance_bytes(1);
                return self.char_or_lifetime();
            }
            Some(b'#') if raw => {
                // Count hashes: `r##…"` opens a raw string; `r#ident` is a
                // raw identifier.
                let mut hashes = 0;
                while self.peek(prefix_len + hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(prefix_len + hashes) == Some(b'"') {
                    return self.raw_string(prefix_len, hashes);
                }
                if b == b'r' && prefix_len == 1 && hashes == 1 {
                    if let Some(c) = self.char_at(self.pos + 2) {
                        if c == '_' || c.is_alphabetic() {
                            self.advance_bytes(2); // `r#`
                            return self.ident_continue_as(TokenKind::Ident);
                        }
                    }
                }
            }
            _ => {}
        }
        self.ident()
    }

    /// A raw string whose `prefix_len` letters and `hashes` hashes precede
    /// the opening quote.  Terminates at `"` followed by `hashes` hashes;
    /// unterminated extends to EOF.
    fn raw_string(&mut self, prefix_len: usize, hashes: usize) -> TokenKind {
        self.advance_bytes(prefix_len + hashes + 1); // prefix, hashes, quote
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut matched = 0;
                while matched < hashes && self.peek(1 + matched) == Some(b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    self.advance_bytes(1 + hashes);
                    return TokenKind::RawStr;
                }
            }
            let c = self.char_at(self.pos).unwrap_or('\0');
            self.advance_char(c);
        }
        TokenKind::RawStr
    }

    fn ident(&mut self) -> TokenKind {
        self.ident_continue_as(TokenKind::Ident)
    }

    /// Consumes identifier-continue chars and returns `kind`.
    fn ident_continue_as(&mut self, kind: TokenKind) -> TokenKind {
        // The caller guarantees at least the start char is consumable.
        if let Some(c) = self.char_at(self.pos) {
            self.advance_char(c);
        } else {
            self.advance_bytes(1);
        }
        while let Some(c) = self.char_at(self.pos) {
            if c == '_' || c.is_alphanumeric() {
                self.advance_char(c);
            } else {
                break;
            }
        }
        kind
    }

    fn number(&mut self) -> TokenKind {
        self.advance_bytes(1);
        let mut seen_dot = false;
        while let Some(b) = self.peek(0) {
            match b {
                b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.advance_bytes(1),
                b'.' if !seen_dot && self.peek(1).is_some_and(|n| n.is_ascii_digit()) => {
                    seen_dot = true;
                    self.advance_bytes(1);
                }
                _ => break,
            }
        }
        TokenKind::Number
    }

    /// Advances over `n` bytes of ASCII (updating line/col per byte).
    fn advance_bytes(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    /// Advances over one whole char (multi-byte safe; column counts bytes).
    fn advance_char(&mut self, c: char) {
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += u32::try_from(c.len_utf8()).unwrap_or(1);
        }
        self.pos += c.len_utf8();
    }
}

/// The 1-based line number of byte offset `at` within `text`.
#[must_use]
pub fn line_of_offset(text: &str, at: usize) -> u32 {
    let upto = &text.as_bytes()[..at.min(text.len())];
    1 + u32::try_from(upto.iter().filter(|&&b| b == b'\n').count()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(TokenKind, &str)> {
        lex(text)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(text)))
            .collect()
    }

    #[test]
    fn covers_every_byte_in_order() {
        let text = "fn main() { let x = \"hi\\\"there\"; /* c /* n */ */ }\n";
        let tokens = lex(text);
        assert_eq!(tokens[0].start, 0);
        assert_eq!(tokens.last().unwrap().end, text.len());
        for pair in tokens.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "gap or overlap in spans");
        }
        let rebuilt: String = tokens.iter().map(|t| t.text(text)).collect();
        assert_eq!(rebuilt, text);
    }

    #[test]
    fn strings_swallow_comment_markers_and_escapes() {
        let toks = kinds(r#"let s = "not // a comment \" still";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("// a comment")));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn raw_strings_respect_hash_counts() {
        let text = r###"let s = r#"quote " inside"# + r"plain";"###;
        let toks = kinds(text);
        let raws: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::RawStr)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(raws, [r###"r#"quote " inside"#"###, r#"r"plain""#]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, ["'x'"]);
    }

    #[test]
    fn escaped_char_literals_close_correctly() {
        let toks = kinds(r"let c = '\''; let n = '\n'; let u = '\u{1F600}';");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, [r"'\''", r"'\n'", r"'\u{1F600}'"]);
    }

    #[test]
    fn nested_block_comments_terminate_at_the_right_depth() {
        let text = "/* a /* b */ c */ code";
        let toks = kinds(text);
        assert_eq!(toks[0], (TokenKind::BlockComment, "/* a /* b */ c */"));
        assert_eq!(toks[1], (TokenKind::Ident, "code"));
    }

    #[test]
    fn raw_identifiers_and_byte_literals_lex() {
        let toks = kinds(r##"let r#fn = b"bytes" ; let c = b'x' ; let rr = br#"raw"# ;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "r#fn"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && *t == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && *t == "b'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && *t == "br#\"raw\"#"));
    }

    #[test]
    fn unterminated_literals_extend_without_panicking() {
        for text in [
            "\"never closed",
            "/* never closed",
            "r#\"never closed",
            "'x",
        ] {
            let tokens = lex(text);
            assert_eq!(tokens.last().unwrap().end, text.len(), "{text:?}");
        }
    }

    #[test]
    fn line_and_col_are_one_based_and_accurate() {
        let text = "ab\ncd ef\n  ghi";
        let tokens: Vec<Token> = lex(text)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .collect();
        let pos: Vec<(u32, u32)> = tokens.iter().map(|t| (t.line, t.col)).collect();
        assert_eq!(pos, [(1, 1), (2, 1), (2, 4), (3, 3)]);
    }

    #[test]
    fn multibyte_text_keeps_spans_on_char_boundaries() {
        let text = "let s = \"héllo → wörld\"; // ✓ done";
        let tokens = lex(text);
        let rebuilt: String = tokens.iter().map(|t| t.text(text)).collect();
        assert_eq!(rebuilt, text);
    }
}
