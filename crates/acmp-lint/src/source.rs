//! The analyzed view of one workspace source file: its tokens, where its
//! `#[cfg(test)]` regions and function bodies are, and the lint waivers it
//! declares.

use crate::lexer::{lex, Token, TokenKind};
use std::cell::Cell;

/// What kind of compilation target a file belongs to, derived from its
/// workspace-relative path.  Rules scope themselves by kind: CLI
/// entrypoints may read the environment and print to stderr, test code may
/// use wall clocks, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` of a crate (excluding `src/bin/`).
    Lib,
    /// `src/bin/**` or `src/main.rs` — a CLI entrypoint.
    Bin,
    /// `examples/**` — demo CLIs, treated like binaries.
    Example,
    /// `tests/**` — an integration-test target.
    Test,
    /// `benches/**` — a benchmark target.
    Bench,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators
    /// (`crates/acmp-store/src/store.rs`).
    pub rel: String,
    /// The owning crate's directory name (`acmp-store`, `core`); root-level
    /// `tests/` and `examples/` belong to `core` (they are wired to it as
    /// explicit targets in its manifest).
    pub crate_name: String,
    pub kind: FileKind,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Byte ranges of `#[cfg(test)]`-gated items (test modules and
    /// functions).  Together with [`FileKind::Test`], these define "test
    /// code" for rules that only police production paths.
    pub test_regions: Vec<(usize, usize)>,
    /// Byte ranges of every `fn` body (outermost braces included), for
    /// rules that reason per function.
    pub fn_bodies: Vec<(usize, usize)>,
    /// Lint waivers declared in the file.
    pub waivers: Vec<Waiver>,
}

/// An inline waiver comment:
/// `// acmp-lint: allow(rule-id) -- justification`.
///
/// A trailing waiver covers its own line; a waiver alone on a line covers
/// the next line.  Waivers without a justification are themselves
/// diagnosed (`bad-waiver`), as are waivers naming unknown rules and
/// waivers that suppress nothing (`unused-waiver`).
#[derive(Debug)]
pub struct Waiver {
    pub rule_id: String,
    /// The justification text after `--`, trimmed; empty when missing.
    pub justification: String,
    /// 1-based line of the waiver comment itself.
    pub line: u32,
    pub col: u32,
    /// The line whose diagnostics this waiver suppresses.
    pub covers_line: u32,
    /// Whether any diagnostic actually matched (set during filtering).
    pub used: Cell<bool>,
}

impl SourceFile {
    /// Analyzes `text` as the file at workspace-relative path `rel`.
    #[must_use]
    pub fn analyze(rel: &str, text: String) -> SourceFile {
        let tokens = lex(&text);
        let (crate_name, kind) = classify(rel);
        let test_regions = find_test_regions(&text, &tokens);
        let fn_bodies = find_fn_bodies_in(&text, &tokens);
        let waivers = find_waivers(&text, &tokens);
        SourceFile {
            rel: rel.to_string(),
            crate_name,
            kind,
            text,
            tokens,
            test_regions,
            fn_bodies,
            waivers,
        }
    }

    /// Whether byte offset `at` lies in test code: a `tests/` target or a
    /// `#[cfg(test)]` region.
    #[must_use]
    pub fn in_test_code(&self, at: usize) -> bool {
        self.kind == FileKind::Test
            || self
                .test_regions
                .iter()
                .any(|&(start, end)| at >= start && at < end)
    }

    /// Indices of the code tokens (everything but whitespace and comments).
    #[must_use]
    pub fn code_token_indices(&self) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The token's text.
    #[must_use]
    pub fn text_of(&self, token: &Token) -> &str {
        token.text(&self.text)
    }
}

/// Derives (crate name, file kind) from a workspace-relative path.
fn classify(rel: &str) -> (String, FileKind) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest): (&str, &[&str]) = match parts.as_slice() {
        ["crates", name, rest @ ..] => (name, rest),
        // Root-level tests/ and examples/ are explicit targets of the
        // `core` crate (see crates/core/Cargo.toml).
        ["tests", ..] => ("core", &["tests"]),
        ["examples", ..] => ("core", &["examples"]),
        _ => ("", &[]),
    };
    let kind = match rest {
        ["src", "bin", ..] | ["src", "main.rs"] => FileKind::Bin,
        ["src", ..] => FileKind::Lib,
        ["tests", ..] => FileKind::Test,
        ["benches", ..] => FileKind::Bench,
        ["examples", ..] => FileKind::Example,
        _ => FileKind::Lib,
    };
    (crate_name.to_string(), kind)
}

/// Finds the byte ranges of items gated by `#[cfg(test)]`: the attribute
/// token sequence `# [ cfg ( test ) ]`, then the next brace-balanced block
/// (skipping intervening attributes, doc comments and item headers).
fn find_test_regions(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let is_cfg_test = code[i].text(text) == "#"
            && code[i + 1].text(text) == "["
            && code[i + 2].text(text) == "cfg"
            && code[i + 3].text(text) == "("
            && code[i + 4].text(text) == "test"
            && code[i + 5].text(text) == ")"
            && code[i + 6].text(text) == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let attr_start = code[i].start;
        // Find the gated item's block: the first `{` at depth 0 from here
        // (parentheses skipped so function signatures cannot confuse it),
        // then its matching `}`.
        let mut j = i + 7;
        let mut paren_depth = 0i32;
        let mut block_start = None;
        while j < code.len() {
            match code[j].text(text) {
                "(" => paren_depth += 1,
                ")" => paren_depth -= 1,
                "{" if paren_depth == 0 => {
                    block_start = Some(j);
                    break;
                }
                // A `;` before any `{` means the gated item has no block
                // (e.g. `#[cfg(test)] use …;`): gate to the semicolon.
                ";" if paren_depth == 0 => {
                    regions.push((attr_start, code[j].end));
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = block_start else {
            i += 7;
            continue;
        };
        let mut depth = 0i32;
        let mut k = open;
        while k < code.len() {
            match code[k].text(text) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        regions.push((attr_start, code[k].end));
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if depth != 0 {
            // Unbalanced braces: gate to EOF, conservatively.
            regions.push((attr_start, text.len()));
        }
        i = j + 1;
    }
    regions
}

/// Finds every `fn` body: from the `fn` keyword, the first `{` outside
/// parentheses opens the body (trait method declarations end at `;` and
/// have none).  Nested functions yield nested (overlapping) ranges.
pub(crate) fn find_fn_bodies_in(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut bodies = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].kind == TokenKind::Ident && code[i].text(text) == "fn") {
            i += 1;
            continue;
        }
        // Walk to the body's `{` (or `;` for a bodiless declaration).
        let mut j = i + 1;
        let mut paren_depth = 0i32;
        let mut open = None;
        while j < code.len() {
            match code[j].text(text) {
                "(" | "[" => paren_depth += 1,
                ")" | "]" => paren_depth -= 1,
                "{" if paren_depth == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if paren_depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let mut depth = 0i32;
        let mut k = open;
        let mut end = text.len();
        while k < code.len() {
            match code[k].text(text) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = code[k].end;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        bodies.push((code[open].start, end));
        // Nested fns are found by continuing from just inside the body.
        i = open + 1;
    }
    bodies
}

const WAIVER_PREFIX: &str = "acmp-lint:";

/// Parses `// acmp-lint: allow(rule-id) -- justification` comments.
fn find_waivers(text: &str, tokens: &[Token]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text(text).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix(WAIVER_PREFIX) else {
            continue;
        };
        let rest = rest.trim();
        // Split `allow(rule-id)` from the ` -- justification` tail.
        let (head, justification) = match rest.split_once("--") {
            Some((h, j)) => (h.trim(), j.trim().to_string()),
            None => (rest, String::new()),
        };
        let rule_id = head
            .strip_prefix("allow(")
            .and_then(|s| s.strip_suffix(')'))
            .map(str::trim)
            .unwrap_or("")
            .to_string();
        // A waiver alone on its line covers the next line; a trailing
        // waiver covers its own.
        let alone = tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .all(|t| t.kind == TokenKind::Whitespace);
        let covers_line = if alone { tok.line + 1 } else { tok.line };
        waivers.push(Waiver {
            rule_id,
            justification,
            line: tok.line,
            col: tok.col,
            covers_line,
            used: Cell::new(false),
        });
    }
    waivers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile::analyze(rel, text.to_string())
    }

    #[test]
    fn classification_follows_workspace_layout() {
        let cases = [
            (
                "crates/acmp-store/src/store.rs",
                "acmp-store",
                FileKind::Lib,
            ),
            (
                "crates/acmp-sweep/src/bin/sweep.rs",
                "acmp-sweep",
                FileKind::Bin,
            ),
            (
                "crates/acmp-obs/tests/no_alloc.rs",
                "acmp-obs",
                FileKind::Test,
            ),
            ("crates/bench/benches/sweep.rs", "bench", FileKind::Bench),
            ("tests/integration_obs.rs", "core", FileKind::Test),
            ("examples/quickstart.rs", "core", FileKind::Example),
        ];
        for (rel, crate_name, kind) in cases {
            let f = file(rel, "");
            assert_eq!((f.crate_name.as_str(), f.kind), (crate_name, kind), "{rel}");
        }
    }

    #[test]
    fn cfg_test_modules_are_test_regions() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { prod(); }\n}\n";
        let f = file("crates/acmp-store/src/x.rs", src);
        let prod_at = src.find("fn prod").unwrap();
        let inner_at = src.find("prod();").unwrap();
        assert!(!f.in_test_code(prod_at));
        assert!(f.in_test_code(inner_at));
    }

    #[test]
    fn cfg_test_functions_are_test_regions_too() {
        let src = "#[cfg(test)]\nfn helper(map: &std::collections::HashMap<u8, u8>) { work(); }\nfn prod() {}\n";
        let f = file("crates/acmp-store/src/x.rs", src);
        assert!(f.in_test_code(src.find("work()").unwrap()));
        assert!(!f.in_test_code(src.find("fn prod").unwrap()));
    }

    #[test]
    fn fn_bodies_nest_and_close() {
        let src = "fn outer() {\n    fn inner() { body(); }\n    tail();\n}\nfn second() -> Vec<(u8, u8)> { x }\n";
        let f = file("crates/acmp-store/src/x.rs", src);
        assert_eq!(f.fn_bodies.len(), 3);
        let inner_body = src.find("body()").unwrap();
        let covering: Vec<_> = f
            .fn_bodies
            .iter()
            .filter(|&&(s, e)| inner_body >= s && inner_body < e)
            .collect();
        assert_eq!(covering.len(), 2, "inner stmt is inside both bodies");
    }

    #[test]
    fn waivers_parse_placement_and_justification() {
        let src = "\
// acmp-lint: allow(raw-stderr) -- the logline! implementation itself
eprintln!(\"hi\");
let x = 1; // acmp-lint: allow(unwrap-in-lib) -- invariant: always present
// acmp-lint: allow(nested-lock)
locked();
";
        let f = file("crates/acmp-obs/src/lib.rs", src);
        assert_eq!(f.waivers.len(), 3);
        assert_eq!(f.waivers[0].rule_id, "raw-stderr");
        assert_eq!(f.waivers[0].covers_line, 2, "own-line waiver covers next");
        assert!(f.waivers[0].justification.starts_with("the logline!"));
        assert_eq!(f.waivers[1].rule_id, "unwrap-in-lib");
        assert_eq!(
            f.waivers[1].covers_line, 3,
            "trailing waiver covers own line"
        );
        assert_eq!(f.waivers[2].rule_id, "nested-lock");
        assert!(
            f.waivers[2].justification.is_empty(),
            "missing justification"
        );
    }
}
