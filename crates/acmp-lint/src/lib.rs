//! acmp-lint: workspace-aware static analysis for the acmp repo.
//!
//! A hand-rolled, dependency-free Rust lexer ([`lexer`]) feeds a small
//! rule engine ([`engine`]) that enforces the invariants the simulation
//! stack actually depends on — determinism of the hot paths, the
//! observability contract, schema single-sourcing, and lock discipline.
//! Findings are precise (`file:line:col`), carry stable rule ids, and can
//! be waived inline with a mandatory justification:
//!
//! ```text
//! // acmp-lint: allow(rule-id) -- why this occurrence is safe
//! ```
//!
//! Run it with `cargo run -p acmp-lint -- check [--rule ID] [--json]`.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use diag::{render_json, Diagnostic, Severity};
pub use engine::{lint, lint_workspace, load_workspace};
pub use rules::{all_rules, rule_ids, ManifestFile};
pub use source::{FileKind, SourceFile};
