//! The `acmp-lint` CLI.
//!
//! ```text
//! cargo run -p acmp-lint -- check [--rule ID] [--json] [--root PATH]
//! cargo run -p acmp-lint -- rules
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 errors found, 2 usage error.

// The linter is dependency-free and cannot route through acmp-obs.
#![allow(clippy::print_stderr)]

use acmp_lint::{all_rules, lint_workspace, render_json, rule_ids, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
acmp-lint: workspace-aware static analysis

USAGE:
    acmp-lint check [--rule ID] [--json] [--root PATH]
    acmp-lint rules

COMMANDS:
    check    lint the workspace and print diagnostics
    rules    list every rule id with its summary

OPTIONS:
    --rule ID     run a single rule (waiver hygiene is skipped)
    --json        emit the acmp-lint/v1 JSON document instead of text
    --root PATH   workspace root (default: auto-detected from cwd)

EXIT CODES:
    0  no errors (warnings allowed)
    1  at least one error-severity finding
    2  usage error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => run_rules(),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            if let Some(cmd) = other {
                eprintln!("acmp-lint: unknown command `{cmd}`\n");
            }
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_rules() -> ExitCode {
    for rule in all_rules() {
        println!("{:<16} {}", rule.id(), rule.summary());
    }
    ExitCode::SUCCESS
}

fn run_check(args: &[String]) -> ExitCode {
    let mut rule: Option<String> = None;
    let mut json = false;
    let mut root: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rule" => {
                let Some(id) = it.next() else {
                    eprintln!("acmp-lint: --rule needs a rule id");
                    return ExitCode::from(2);
                };
                if !rule_ids().contains(&id.as_str()) {
                    eprintln!(
                        "acmp-lint: unknown rule `{id}` (see `acmp-lint rules` for the list)"
                    );
                    return ExitCode::from(2);
                }
                rule = Some(id.clone());
            }
            "--json" => json = true,
            "--root" => {
                let Some(path) = it.next() else {
                    eprintln!("acmp-lint: --root needs a path");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(path));
            }
            other => {
                eprintln!("acmp-lint: unknown option `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "acmp-lint: no workspace root found (no ancestor with crates/ and Cargo.toml); \
                 pass --root"
            );
            return ExitCode::from(2);
        }
    };

    let diagnostics = match lint_workspace(&root, rule.as_deref()) {
        Ok(d) => d,
        Err(err) => {
            eprintln!(
                "acmp-lint: failed to read workspace at {}: {err}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;

    if json {
        println!("{}", render_json(&diagnostics));
    } else {
        for d in &diagnostics {
            println!("{}", d.render());
        }
        println!(
            "acmp-lint: {} error{}, {} warning{}",
            errors,
            if errors == 1 { "" } else { "s" },
            warnings,
            if warnings == 1 { "" } else { "s" },
        );
    }

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the cwd looking for the workspace root: a directory with
/// both `Cargo.toml` and `crates/`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
