//! The engine: walks the workspace, runs every rule over every file,
//! applies inline waivers, and returns a stable-sorted diagnostic list.

use crate::diag::{Diagnostic, Severity};
use crate::rules::{all_rules, rule_ids, ManifestFile, Rule};
use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Engine-level rule ids (not waivable — they police the waivers).
pub const BAD_WAIVER: &str = "bad-waiver";
pub const UNUSED_WAIVER: &str = "unused-waiver";

/// Lints already-analyzed sources and manifests.
///
/// `rule_filter` restricts the run to one rule id; waiver hygiene
/// ([`BAD_WAIVER`], [`UNUSED_WAIVER`]) is only checked on full runs, since
/// a filtered run cannot tell whether another rule's waiver earns its keep.
#[must_use]
pub fn lint(
    files: &[SourceFile],
    manifests: &[ManifestFile],
    rule_filter: Option<&str>,
) -> Vec<Diagnostic> {
    let rules: Vec<Box<dyn Rule>> = all_rules()
        .into_iter()
        .filter(|r| rule_filter.is_none_or(|want| r.id() == want))
        .collect();
    let known = rule_ids();

    let mut raw = Vec::new();
    for rule in &rules {
        for file in files {
            rule.check_file(file, &mut raw);
        }
        for manifest in manifests {
            rule.check_manifest(manifest, &mut raw);
        }
    }

    // Apply waivers: a diagnostic is suppressed by a *valid* waiver in its
    // file covering its line for its rule.  Invalid waivers never suppress.
    let mut out = Vec::new();
    for diag in raw {
        let file = files.iter().find(|f| f.rel == diag.path);
        let waived = file.is_some_and(|f| {
            f.waivers
                .iter()
                .filter(|w| waiver_is_valid(w, &known))
                .filter(|w| w.rule_id == diag.rule && w.covers_line == diag.line)
                .inspect(|w| w.used.set(true))
                .count()
                > 0
        });
        if !waived {
            out.push(diag);
        }
    }

    if rule_filter.is_none() {
        for file in files {
            for waiver in &file.waivers {
                if !waiver_is_valid(waiver, &known) {
                    let why = if waiver.rule_id.is_empty() {
                        "malformed waiver: expected `allow(rule-id)`".to_string()
                    } else if !known.contains(&waiver.rule_id.as_str()) {
                        format!("waiver names unknown rule `{}`", waiver.rule_id)
                    } else {
                        format!(
                            "waiver for `{}` has no justification: append \
                             ` -- <why this is safe>`",
                            waiver.rule_id
                        )
                    };
                    out.push(Diagnostic {
                        path: file.rel.clone(),
                        line: waiver.line,
                        col: waiver.col,
                        rule: BAD_WAIVER,
                        severity: Severity::Error,
                        message: why,
                    });
                } else if !waiver.used.get() {
                    out.push(Diagnostic {
                        path: file.rel.clone(),
                        line: waiver.line,
                        col: waiver.col,
                        rule: UNUSED_WAIVER,
                        severity: Severity::Warning,
                        message: format!(
                            "waiver for `{}` suppresses nothing on line {}; remove it",
                            waiver.rule_id, waiver.covers_line
                        ),
                    });
                }
            }
        }
    }

    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    out
}

fn waiver_is_valid(waiver: &crate::source::Waiver, known: &[&'static str]) -> bool {
    !waiver.rule_id.is_empty()
        && known.contains(&waiver.rule_id.as_str())
        && !waiver.justification.is_empty()
}

/// Loads and lints the workspace rooted at `root`.
///
/// The walk covers `crates/*/{src,tests,benches,examples}` recursively,
/// the root-level `tests/` and `examples/` targets (owned by the `core`
/// crate), and every `shims/*/Cargo.toml` manifest.  The acmp-lint corpus
/// (`crates/acmp-lint/corpus/`) is fixture data, not workspace code, and
/// is outside those roots by construction.
pub fn lint_workspace(root: &Path, rule_filter: Option<&str>) -> io::Result<Vec<Diagnostic>> {
    let (files, manifests) = load_workspace(root)?;
    Ok(lint(&files, &manifests, rule_filter))
}

/// Collects and analyzes every lintable file under `root`.
pub fn load_workspace(root: &Path) -> io::Result<(Vec<SourceFile>, Vec<ManifestFile>)> {
    let mut rust_paths: Vec<PathBuf> = Vec::new();

    for crate_dir in sorted_dirs(&root.join("crates"))? {
        for sub in ["src", "tests", "benches", "examples"] {
            collect_rs(&crate_dir.join(sub), &mut rust_paths)?;
        }
    }
    collect_rs(&root.join("tests"), &mut rust_paths)?;
    collect_rs(&root.join("examples"), &mut rust_paths)?;
    rust_paths.sort();

    let mut files = Vec::with_capacity(rust_paths.len());
    for path in &rust_paths {
        let text = fs::read_to_string(path)?;
        files.push(SourceFile::analyze(&rel_path(root, path), text));
    }

    let mut manifests = Vec::new();
    for shim_dir in sorted_dirs(&root.join("shims"))? {
        let manifest = shim_dir.join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(ManifestFile {
                rel: rel_path(root, &manifest),
                text: fs::read_to_string(&manifest)?,
            });
        }
    }

    Ok((files, manifests))
}

/// The immediate subdirectories of `dir`, sorted by name (missing dir →
/// empty, so optional roots like `benches/` cost nothing).
fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(out);
    };
    for entry in entries {
        let path = entry?.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `*.rs` files under `dir` (missing dir → no-op).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(());
    };
    for entry in entries {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let files = vec![SourceFile::analyze(rel, src.to_string())];
        lint(&files, &[], None)
    }

    #[test]
    fn raw_stderr_fires_and_valid_waiver_suppresses() {
        let findings = run("crates/acmp-obs/src/x.rs", "fn f() { eprintln!(\"x\"); }\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "raw-stderr");

        let waived = run(
            "crates/acmp-obs/src/x.rs",
            "fn f() {\n    // acmp-lint: allow(raw-stderr) -- logline! impl itself\n    eprintln!(\"x\");\n}\n",
        );
        assert!(waived.is_empty(), "{waived:?}");
    }

    #[test]
    fn waiver_without_justification_is_bad_and_does_not_suppress() {
        let findings = run(
            "crates/acmp-obs/src/x.rs",
            "fn f() {\n    // acmp-lint: allow(raw-stderr)\n    eprintln!(\"x\");\n}\n",
        );
        let rules: Vec<_> = findings.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec![BAD_WAIVER, "raw-stderr"]);
    }

    #[test]
    fn unknown_rule_waiver_is_bad() {
        let findings = run(
            "crates/acmp-obs/src/x.rs",
            "// acmp-lint: allow(no-such-rule) -- because\nfn f() {}\n",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, BAD_WAIVER);
        assert!(findings[0].message.contains("no-such-rule"));
    }

    #[test]
    fn unused_waiver_warns_on_full_runs_only() {
        let src = "// acmp-lint: allow(raw-stderr) -- nothing here needs it\nfn f() {}\n";
        let files = vec![SourceFile::analyze(
            "crates/acmp-obs/src/x.rs",
            src.to_string(),
        )];
        let full = lint(&files, &[], None);
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].rule, UNUSED_WAIVER);
        assert_eq!(full[0].severity, Severity::Warning);

        let files = vec![SourceFile::analyze(
            "crates/acmp-obs/src/x.rs",
            src.to_string(),
        )];
        let filtered = lint(&files, &[], Some("raw-stderr"));
        assert!(filtered.is_empty());
    }

    #[test]
    fn diagnostics_sort_stably_by_path_then_position() {
        let a = SourceFile::analyze(
            "crates/acmp-obs/src/b.rs",
            "fn f() { eprintln!(\"x\"); eprint!(\"y\"); }\n".to_string(),
        );
        let b = SourceFile::analyze(
            "crates/acmp-obs/src/a.rs",
            "fn f() { eprintln!(\"x\"); }\n".to_string(),
        );
        let findings = lint(&[a, b], &[], None);
        let paths: Vec<_> = findings.iter().map(|d| (d.path.as_str(), d.col)).collect();
        assert_eq!(
            paths,
            vec![
                ("crates/acmp-obs/src/a.rs", 10),
                ("crates/acmp-obs/src/b.rs", 10),
                ("crates/acmp-obs/src/b.rs", 26),
            ]
        );
    }
}
