//! The rule set: this repo's real invariants, enforced token-by-token.
//!
//! Every rule reports [`Diagnostic`]s with a stable rule id that inline
//! waivers (`// acmp-lint: allow(rule-id) -- justification`) can name.
//! Rules are deliberately conservative: a finding means "this pattern is
//! banned here", and a justified waiver is the escape hatch — never
//! silence by imprecision.
//!
//! Adding a rule: implement [`Rule`], register it in [`all_rules`], add a
//! known-bad corpus file under `corpus/` with a blessed `.expected`, and
//! document it in the README's rule table.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Token, TokenKind};
use crate::source::{FileKind, SourceFile};

/// A manifest file (Cargo.toml) presented to manifest-level rules.
#[derive(Debug)]
pub struct ManifestFile {
    /// Workspace-relative path (`shims/rand_chacha/Cargo.toml`).
    pub rel: String,
    pub text: String,
}

/// One lint rule.
pub trait Rule {
    /// The stable id waivers and `--rule` name.
    fn id(&self) -> &'static str;
    /// One-line description for `check --list` and the README table.
    fn summary(&self) -> &'static str;
    /// Token-level pass over one source file.
    fn check_file(&self, _file: &SourceFile, _out: &mut Vec<Diagnostic>) {}
    /// Pass over one manifest.
    fn check_manifest(&self, _manifest: &ManifestFile, _out: &mut Vec<Diagnostic>) {}
}

/// Every rule, in rule-table order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Nondeterminism),
        Box::new(EnvSideChannel),
        Box::new(RawStderr),
        Box::new(SchemaLiteral),
        Box::new(NestedLock),
        Box::new(UnwrapInLib),
        Box::new(ShimDrift),
        Box::new(FixtureBless),
    ]
}

/// The ids of every rule (for waiver validation).
#[must_use]
pub fn rule_ids() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.id()).collect()
}

/// A filtered view of a file's code tokens (whitespace and comments
/// dropped), with text access — what most rules actually pattern-match
/// over.
struct Code<'a> {
    file: &'a SourceFile,
    toks: Vec<&'a Token>,
}

impl<'a> Code<'a> {
    fn new(file: &'a SourceFile) -> Self {
        let toks = file
            .tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect();
        Code { file, toks }
    }

    fn len(&self) -> usize {
        self.toks.len()
    }

    fn s(&self, i: usize) -> &str {
        self.toks[i].text(&self.file.text)
    }

    fn t(&self, i: usize) -> &Token {
        self.toks[i]
    }

    /// Whether the code token at `i` matches an ident-path pattern like
    /// `["Instant", "::", "now"]` starting there.
    fn matches_seq(&self, i: usize, pat: &[&str]) -> bool {
        pat.iter()
            .enumerate()
            .all(|(k, want)| i + k < self.len() && self.s(i + k) == *want)
    }

    fn diag(
        &self,
        rule: &'static str,
        severity: Severity,
        tok: &Token,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            path: self.file.rel.clone(),
            line: tok.line,
            col: tok.col,
            rule,
            severity,
            message,
        }
    }
}

// ---------------------------------------------------------------------------
// nondeterminism
// ---------------------------------------------------------------------------

/// Wall clocks and thread identity are banned in simulation and storage
/// code: byte-identical fig09 output across cold/warm/sharded/instrumented
/// paths depends on nothing reading ambient time.  `acmp-obs` owns the
/// process clock; `bench` measures wall time by design.
struct Nondeterminism;

const NONDET_CRATES: &[&str] = &["core", "acmp-sweep", "acmp-store"];
// The lexer emits single-character `Punct` tokens, so `::` is two `:`s.
const NONDET_PATTERNS: &[(&[&str], &str)] = &[
    (&["SystemTime", ":", ":", "now"], "SystemTime::now"),
    (&["Instant", ":", ":", "now"], "Instant::now"),
    (&["thread", ":", ":", "current"], "thread::current"),
];

impl Rule for Nondeterminism {
    fn id(&self) -> &'static str {
        "nondeterminism"
    }
    fn summary(&self) -> &'static str {
        "wall clocks and thread identity banned in sim-*/core/acmp-sweep/acmp-store"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let scoped = file.crate_name.starts_with("sim-")
            || NONDET_CRATES.contains(&file.crate_name.as_str());
        if !scoped {
            return;
        }
        let code = Code::new(file);
        for i in 0..code.len() {
            if file.in_test_code(code.t(i).start) {
                continue;
            }
            for (pat, name) in NONDET_PATTERNS {
                if code.matches_seq(i, pat) {
                    out.push(code.diag(
                        self.id(),
                        Severity::Error,
                        code.t(i),
                        format!(
                            "`{name}` reads ambient state in deterministic simulation/storage \
                             code; route timing through `acmp-obs` (e.g. `acmp_obs::Stopwatch`) \
                             or waive with the invariant that keeps results byte-identical"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// env-side-channel
// ---------------------------------------------------------------------------

/// `std::env::var` outside CLI argument handling reintroduces the
/// `$ACMP_SWEEP_*` side-channels PR 6 removed: configuration must arrive
/// through explicit flags and builders, never ambient process state.
struct EnvSideChannel;

impl Rule for EnvSideChannel {
    fn id(&self) -> &'static str {
        "env-side-channel"
    }
    fn summary(&self) -> &'static str {
        "std::env::var banned outside CLI entrypoints (bins and examples)"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if matches!(file.kind, FileKind::Bin | FileKind::Example) {
            return;
        }
        let code = Code::new(file);
        for i in 0..code.len() {
            if file.in_test_code(code.t(i).start) {
                continue;
            }
            if code.matches_seq(i, &["env", ":", ":"]) && i + 3 < code.len() {
                let name = code.s(i + 3);
                if matches!(name, "var" | "var_os" | "vars" | "vars_os") {
                    out.push(code.diag(
                        self.id(),
                        Severity::Error,
                        code.t(i),
                        format!(
                            "`std::env::{name}` outside CLI argument handling is a \
                             configuration side-channel; plumb the value through explicit \
                             options or the engine builder instead"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// raw-stderr
// ---------------------------------------------------------------------------

/// Direct `eprintln!` bypasses the observability layer: `logline!` prints
/// the identical bytes *and* records the line as a trace event, so run
/// narratives stay complete.  Only the sweep CLI's entrypoint (which owns
/// the stderr contract) is exempt.
struct RawStderr;

impl Rule for RawStderr {
    fn id(&self) -> &'static str {
        "raw-stderr"
    }
    fn summary(&self) -> &'static str {
        "eprintln!/eprint! outside crates/acmp-sweep/src/bin must use logline!"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        // acmp-lint itself is exempt: it is dependency-free by design
        // (the linter cannot link the crates it lints), so its CLI owns
        // its own stderr.
        if file.rel.starts_with("crates/acmp-sweep/src/bin/")
            || file.rel.starts_with("crates/acmp-lint/")
        {
            return;
        }
        let code = Code::new(file);
        for i in 0..code.len().saturating_sub(1) {
            if file.in_test_code(code.t(i).start) {
                continue;
            }
            let name = code.s(i);
            if (name == "eprintln" || name == "eprint") && code.s(i + 1) == "!" {
                out.push(code.diag(
                    self.id(),
                    Severity::Error,
                    code.t(i),
                    format!(
                        "raw `{name}!` bypasses `acmp-obs`; use `acmp_obs::logline!` — the \
                         stderr bytes are identical and the line lands in the event trace"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// schema-literal
// ---------------------------------------------------------------------------

/// Versioned schema names and store filename patterns each have exactly
/// one defining constant; an inline copy anywhere else is drift waiting to
/// happen (test code is exempt — golden tests pin the literal bytes on
/// purpose).
struct SchemaLiteral;

/// (needle, requires-digit-after, the one file allowed to spell it).
const SCHEMA_PATTERNS: &[(&str, bool, &str)] = &[
    ("acmp-obs-trace/v", true, "crates/acmp-obs/src/trace.rs"),
    ("acmp-obs-metrics/v", true, "crates/acmp-obs/src/metrics.rs"),
    // acmp-lint: allow(schema-literal) -- the rule's own pattern table
    ("seg-", false, "crates/acmp-store/src/segment.rs"),
    // acmp-lint: allow(schema-literal) -- the rule's own pattern table
    ("idx-", false, "crates/acmp-store/src/index.rs"),
];

impl Rule for SchemaLiteral {
    fn id(&self) -> &'static str {
        "schema-literal"
    }
    fn summary(&self) -> &'static str {
        "schema versions and segment/index filename patterns live in one constant each"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for tok in &file.tokens {
            if !matches!(tok.kind, TokenKind::Str | TokenKind::RawStr) {
                continue;
            }
            if file.in_test_code(tok.start) {
                continue;
            }
            let text = tok.text(&file.text);
            for (needle, digit_after, allowed) in SCHEMA_PATTERNS {
                if file.rel == *allowed {
                    continue;
                }
                let Some(at) = find_pattern(text, needle, *digit_after) else {
                    continue;
                };
                // Report the line/col of the match itself — schema names
                // can sit deep inside a multi-line literal.
                let prefix = &text[..at];
                let extra_lines = prefix.matches('\n').count() as u32;
                let col = match prefix.rfind('\n') {
                    Some(nl) => (at - nl) as u32,
                    None => tok.col + at as u32,
                };
                out.push(Diagnostic {
                    path: file.rel.clone(),
                    line: tok.line + extra_lines,
                    col,
                    rule: self.id(),
                    severity: Severity::Error,
                    message: format!(
                        "inline `{needle}…` literal duplicates the defining constant in \
                         `{allowed}`; reference the constant so the two can never drift"
                    ),
                });
            }
        }
    }
}

/// Finds `needle` in `text`; when `digit_after` is set the match must be
/// followed by an ASCII digit (so `acmp-obs-trace/v` only hits versioned
/// spellings like `…/v1`).
fn find_pattern(text: &str, needle: &str, digit_after: bool) -> Option<usize> {
    let mut from = 0;
    while let Some(rel_at) = text[from..].find(needle) {
        let at = from + rel_at;
        let after = text.as_bytes().get(at + needle.len());
        if !digit_after || after.is_some_and(u8::is_ascii_digit) {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

// ---------------------------------------------------------------------------
// nested-lock
// ---------------------------------------------------------------------------

/// A second lock acquisition while one is syntactically held in the same
/// function is a lock-order hazard for the concurrent `sweep serve` /
/// elastic-coordinator work.  Conservative and waiver-friendly: only
/// receivers whose name is a known workspace lock count, and only
/// same-function nesting is visible.
struct NestedLock;

/// Known lock receivers across the workspace: the store/cache/scheduler
/// mutex fields, the recorder registry and buffers.  A new lock field
/// should be added here when introduced.
const KNOWN_LOCK_NAMES: &[&str] = &[
    "inner",
    "injector",
    "deque",
    "deques",
    "shard",
    "shards",
    "slots",
    "events",
    "buf",
    "REGISTRY",
    "registry",
    "counters",
    "histograms",
    "mutex",
    "state",
];

impl Rule for NestedLock {
    fn id(&self) -> &'static str {
        "nested-lock"
    }
    fn summary(&self) -> &'static str {
        "no second .lock()/.read()/.write() on workspace locks while one is held"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = Code::new(file);
        // Outermost function bodies only: nested `fn` items get their own
        // scope (an outer guard is not actually held across them), so each
        // body is scanned with its nested bodies masked out.
        let bodies = &file.fn_bodies;
        for (bi, &(start, end)) in bodies.iter().enumerate() {
            let enclosing = bodies
                .iter()
                .enumerate()
                .any(|(oi, &(os, oe))| oi != bi && os < start && end <= oe);
            if enclosing {
                continue; // scanned as a nested range of its outer body
            }
            self.scan_body(&code, file, (start, end), bodies, out);
        }
    }
}

impl NestedLock {
    #[allow(clippy::too_many_lines)]
    fn scan_body(
        &self,
        code: &Code<'_>,
        file: &SourceFile,
        (start, end): (usize, usize),
        all_bodies: &[(usize, usize)],
        out: &mut Vec<Diagnostic>,
    ) {
        // Nested fn bodies inside this one: scanned separately, masked here.
        let nested: Vec<(usize, usize)> = all_bodies
            .iter()
            .copied()
            .filter(|&(s, e)| s > start && e <= end && (s, e) != (start, end))
            .collect();
        let in_nested = |at: usize| nested.iter().any(|&(s, e)| at >= s && at < e);

        let idx: Vec<usize> = (0..code.len())
            .filter(|&i| {
                let t = code.t(i);
                t.start >= start && t.start < end && !in_nested(t.start)
            })
            .collect();

        let mut depth = 0i32;
        // Held guards: (binding name, depth bound at, receiver, line).
        let mut held: Vec<(String, i32, String, u32)> = Vec::new();
        // Lock receivers acquired earlier in the current statement
        // (temporaries live to the statement's end).
        let mut stmt_locks: Vec<(String, u32)> = Vec::new();
        // The binding name of an in-flight `let` statement.
        let mut pending_let: Option<String> = None;

        let mut p = 0;
        while p < idx.len() {
            let i = idx[p];
            let text = code.s(i);
            match text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    held.retain(|&(_, d, ..)| d <= depth);
                    stmt_locks.clear();
                    pending_let = None;
                }
                ";" => {
                    stmt_locks.clear();
                    pending_let = None;
                }
                "let" => {
                    // `let [mut] name = …`
                    let mut q = p + 1;
                    if q < idx.len() && code.s(idx[q]) == "mut" {
                        q += 1;
                    }
                    if q < idx.len() && code.t(idx[q]).kind == TokenKind::Ident {
                        pending_let = Some(code.s(idx[q]).to_string());
                    }
                }
                // `drop(name)` releases a held guard early.
                "drop"
                    if p + 3 < idx.len()
                        && code.s(idx[p + 1]) == "("
                        && code.s(idx[p + 3]) == ")" =>
                {
                    let name = code.s(idx[p + 2]);
                    held.retain(|(n, ..)| n != name);
                }
                "." => {
                    // `.lock()` / `.read()` / `.write()` with no arguments.
                    let is_acquire = p + 3 < idx.len()
                        && matches!(code.s(idx[p + 1]), "lock" | "read" | "write")
                        && code.s(idx[p + 2]) == "("
                        && code.s(idx[p + 3]) == ")";
                    if !is_acquire {
                        p += 1;
                        continue;
                    }
                    let method = code.s(idx[p + 1]);
                    let Some(receiver) = receiver_name(code, &idx, p) else {
                        p += 4;
                        continue;
                    };
                    if !KNOWN_LOCK_NAMES.contains(&receiver.as_str()) {
                        p += 4;
                        continue;
                    }
                    let tok = code.t(idx[p + 1]);
                    if let Some((_, _, prior, line)) = held.first() {
                        out.push(code.diag(
                            self.id(),
                            Severity::Error,
                            tok,
                            format!(
                                "`{receiver}.{method}()` while the `{prior}` guard from line \
                                 {line} is still held — nested workspace locks invite \
                                 lock-order deadlocks under `sweep serve`"
                            ),
                        ));
                    } else if let Some((prior, line)) = stmt_locks.first() {
                        out.push(code.diag(
                            self.id(),
                            Severity::Error,
                            tok,
                            format!(
                                "`{receiver}.{method}()` in the same statement as the \
                                 `{prior}` acquisition on line {line} — both temporaries \
                                 are alive until the statement ends"
                            ),
                        ));
                    }
                    // A `let g = recv.lock();` binding holds to end of
                    // block; anything else is a statement temporary.
                    let binds =
                        pending_let.is_some() && p + 4 < idx.len() && code.s(idx[p + 4]) == ";";
                    if binds {
                        let name = pending_let.take().unwrap_or_default();
                        held.push((name, depth, receiver, tok.line));
                    } else {
                        stmt_locks.push((receiver, tok.line));
                    }
                    p += 4;
                    continue;
                }
                _ => {}
            }
            p += 1;
        }
        let _ = file;
    }
}

/// The receiver's identifying name for a `.lock()` at code index `idx[p]`
/// (the `.`): the ident just before it, or — through `]` / `)` — the
/// indexed collection or method name (`deques[me].lock()` → `deques`,
/// `self.shard(key).lock()` → `shard`).
fn receiver_name(code: &Code<'_>, idx: &[usize], p: usize) -> Option<String> {
    let mut q = p.checked_sub(1)?;
    loop {
        let text = code.s(idx[q]);
        match text {
            "]" | ")" => {
                // Walk back over the bracketed group.
                let close = text;
                let open = if close == "]" { "[" } else { "(" };
                let mut depth = 0i32;
                loop {
                    let t = code.s(idx[q]);
                    if t == close {
                        depth += 1;
                    } else if t == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    q = q.checked_sub(1)?;
                }
                q = q.checked_sub(1)?;
            }
            _ => {
                if code.t(idx[q]).kind == TokenKind::Ident {
                    return Some(text.to_string());
                }
                return None;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// unwrap-in-lib
// ---------------------------------------------------------------------------

/// A panicking `.unwrap()`/`.expect()` in storage or sweep library code
/// takes a whole worker (and its shard) down mid-sweep; library paths
/// return `Result` and let the engine decide.  Invariant-backed uses carry
/// a waiver spelling out the invariant.
struct UnwrapInLib;

const UNWRAP_CRATES: &[&str] = &["acmp-store", "acmp-sweep"];

impl Rule for UnwrapInLib {
    fn id(&self) -> &'static str {
        "unwrap-in-lib"
    }
    fn summary(&self) -> &'static str {
        "no .unwrap()/.expect() in acmp-store/acmp-sweep library code"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !(UNWRAP_CRATES.contains(&file.crate_name.as_str()) && file.kind == FileKind::Lib) {
            return;
        }
        let code = Code::new(file);
        for i in 0..code.len().saturating_sub(2) {
            if file.in_test_code(code.t(i).start) {
                continue;
            }
            if code.s(i) == "." {
                let name = code.s(i + 1);
                if (name == "unwrap" || name == "expect") && code.s(i + 2) == "(" {
                    out.push(code.diag(
                        self.id(),
                        Severity::Error,
                        code.t(i + 1),
                        format!(
                            "`.{name}()` can panic a sweep worker mid-run; return the error \
                             to the engine, or waive with the invariant that makes the \
                             failure impossible"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// shim-drift
// ---------------------------------------------------------------------------

/// The in-tree shims replace crates.io packages in offline builds; every
/// inter-shim dependency is a declared edge here, and anything else is
/// drift (a shim quietly growing real dependencies defeats its purpose).
struct ShimDrift;

/// The declared shim dependency graph (`shim` may depend on `dep`).
const SHIM_EDGES: &[(&str, &str)] = &[
    ("proptest", "rand"),
    ("proptest", "rand_chacha"),
    ("rand_chacha", "rand"),
    ("serde", "serde_derive"),
    ("serde_json", "serde"),
];

impl Rule for ShimDrift {
    fn id(&self) -> &'static str {
        "shim-drift"
    }
    fn summary(&self) -> &'static str {
        "shims depend only on declared shim edges (see SHIM_EDGES)"
    }
    fn check_manifest(&self, manifest: &ManifestFile, out: &mut Vec<Diagnostic>) {
        let Some(shim) = manifest
            .rel
            .strip_prefix("shims/")
            .and_then(|r| r.strip_suffix("/Cargo.toml"))
        else {
            return;
        };
        // Walk the TOML line-by-line: inside [dependencies] or
        // [build-dependencies] (dev-dependencies are test-only and exempt),
        // every `name = …` line is an edge to check.
        let mut in_deps = false;
        for (lineno, line) in manifest.text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                in_deps = matches!(
                    trimmed,
                    "[dependencies]" | "[build-dependencies]" | "[target.dependencies]"
                );
                continue;
            }
            if !in_deps || trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let Some(dep) = trimmed.split('=').next().map(str::trim) else {
                continue;
            };
            if dep.is_empty() {
                continue;
            }
            let declared = SHIM_EDGES.contains(&(shim, dep));
            if !declared {
                out.push(Diagnostic {
                    path: manifest.rel.clone(),
                    line: lineno as u32 + 1,
                    col: 1,
                    rule: self.id(),
                    severity: Severity::Error,
                    message: format!(
                        "shim `{shim}` must not depend on `{dep}`: only declared shim edges \
                         are allowed (add the edge to SHIM_EDGES in acmp-lint deliberately, \
                         or drop the dependency)"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// fixture-bless
// ---------------------------------------------------------------------------

/// Golden fixtures only change through the explicit `UPDATE_FIXTURES=1`
/// bless path: test code writing into `tests/fixtures/` without that gate
/// can silently rewrite the byte-identity baseline it is supposed to
/// check.
struct FixtureBless;

const WRITE_CALLS: &[&str] = &["write", "write_all", "create", "create_new", "copy"];

impl Rule for FixtureBless {
    fn id(&self) -> &'static str {
        "fixture-bless"
    }
    fn summary(&self) -> &'static str {
        "test writes into tests/fixtures/ must be gated by UPDATE_FIXTURES"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = Code::new(file);
        for &(start, end) in &file.fn_bodies {
            // Only test code is in scope.
            if !file.in_test_code(start) {
                continue;
            }
            let idx: Vec<usize> = (0..code.len())
                .filter(|&i| code.t(i).start >= start && code.t(i).start < end)
                .collect();
            // The gate anywhere in the body clears the whole body.
            let gated = idx.iter().any(|&i| code.s(i).contains("UPDATE_FIXTURES"));
            if gated {
                continue;
            }
            // Idents bound by statements that mention a fixtures literal
            // are tainted: `let path = fixture_dir().join("fixtures")…`.
            let mut tainted: Vec<String> = Vec::new();
            let mut stmt_start = 0usize;
            for (k, &i) in idx.iter().enumerate() {
                if matches!(code.s(i), ";" | "{" | "}") {
                    let stmt = &idx[stmt_start..k];
                    if stmt.iter().any(|&j| is_fixture_literal(&code, j)) {
                        for &j in stmt {
                            if code.s(j) == "let" {
                                let mut q = j;
                                // find the bound ident after let [mut]
                                for &cand in &idx[stmt_start..k] {
                                    if cand > q
                                        && code.t(cand).kind == TokenKind::Ident
                                        && code.s(cand) != "mut"
                                    {
                                        tainted.push(code.s(cand).to_string());
                                        break;
                                    }
                                    q = q.max(cand);
                                }
                            }
                        }
                    }
                    stmt_start = k + 1;
                }
            }
            // A write call whose arguments mention a fixtures literal or a
            // tainted binding, without the gate, is the finding.
            for (k, &i) in idx.iter().enumerate() {
                if code.t(i).kind != TokenKind::Ident
                    || !WRITE_CALLS.contains(&code.s(i))
                    || !(k + 1 < idx.len() && code.s(idx[k + 1]) == "(")
                {
                    continue;
                }
                // Scan the argument list to the matching `)`.
                let mut depth = 0i32;
                let mut hit = false;
                for &j in &idx[k + 1..] {
                    match code.s(j) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if is_fixture_literal(&code, j)
                        || (code.t(j).kind == TokenKind::Ident
                            && tainted.iter().any(|t| t == code.s(j)))
                    {
                        hit = true;
                    }
                }
                if hit {
                    out.push(code.diag(
                        self.id(),
                        Severity::Error,
                        code.t(i),
                        format!(
                            "`{}` into tests/fixtures/ without the `UPDATE_FIXTURES` gate \
                             rewrites the golden baseline silently; wrap the write in \
                             `if std::env::var_os(\"UPDATE_FIXTURES\").is_some()`",
                            code.s(i)
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether code token `i` is a string literal naming the fixtures dir
/// (`"tests/fixtures"`, `"tests/fixtures/fig09.jsonl"`, `"fixtures"`, …).
fn is_fixture_literal(code: &Code<'_>, i: usize) -> bool {
    let tok = code.t(i);
    matches!(tok.kind, TokenKind::Str | TokenKind::RawStr) && code.s(i).contains("fixtures")
}
