//! Diagnostics: what a rule reports, how it sorts, and how it renders
//! (human text and machine JSON — hand-rolled, this crate has no deps).

/// How serious a finding is.  Errors fail the build; warnings print but do
/// not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// The rule that fired (`nondeterminism`, `raw-stderr`, …).
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

impl Diagnostic {
    /// The stable sort key: path, then position, then rule.
    #[must_use]
    pub fn sort_key(&self) -> (&str, u32, u32, &'static str) {
        (&self.path, self.line, self.col, self.rule)
    }

    /// `path:line:col: severity[rule]: message` — one line, rustc-style.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}]: {}",
            self.path,
            self.line,
            self.col,
            self.severity.as_str(),
            self.rule,
            self.message
        )
    }
}

/// Renders diagnostics as a JSON document:
/// `{"schema":"acmp-lint/v1","diagnostics":[…],"errors":N,"warnings":N}`.
#[must_use]
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("{\"schema\":\"acmp-lint/v1\",\"diagnostics\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        json_string(&mut out, &d.path);
        out.push_str(",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"col\":");
        out.push_str(&d.col.to_string());
        out.push_str(",\"rule\":");
        json_string(&mut out, d.rule);
        out.push_str(",\"severity\":");
        json_string(&mut out, d.severity.as_str());
        out.push_str(",\"message\":");
        json_string(&mut out, &d.message);
        out.push('}');
    }
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    out.push_str(&format!("],\"errors\":{errors},\"warnings\":{warnings}}}"));
    out
}

/// Appends `s` to `out` as a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_rustc_shape() {
        let d = Diagnostic {
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            rule: "raw-stderr",
            severity: Severity::Error,
            message: "use `logline!`".to_string(),
        };
        assert_eq!(
            d.render(),
            "crates/x/src/lib.rs:3:9: error[raw-stderr]: use `logline!`"
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = Diagnostic {
            path: "a.rs".to_string(),
            line: 1,
            col: 1,
            rule: "schema-literal",
            severity: Severity::Warning,
            message: "literal \"x\"\nnewline".to_string(),
        };
        let json = render_json(&[d]);
        assert!(json.starts_with("{\"schema\":\"acmp-lint/v1\""));
        assert!(json.contains("\\\"x\\\"\\nnewline"));
        assert!(json.ends_with("\"errors\":0,\"warnings\":1}"));
    }
}
