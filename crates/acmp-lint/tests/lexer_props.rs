//! Property tests of the lexer's totality: arbitrary token soup —
//! including unterminated strings, stray quotes, half-open comments and
//! multibyte text — must never panic, and the emitted spans must exactly
//! partition the input so concatenating token texts round-trips the file.

use acmp_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Fragments chosen to stress every lexer mode and its error recovery.
const FRAGMENTS: &[&str] = &[
    "fn",
    "let",
    "x",
    "r#match",
    "'a",
    "'x'",
    "b'\\n'",
    "0x1f",
    "1_000.5e-3",
    "\"str\"",
    "\"unterminated",
    "r#\"raw\"#",
    "r#\"open",
    "br##\"deep\"##",
    "//",
    "// line\n",
    "/*",
    "*/",
    "/* nested /* deep */ */",
    "::",
    ".",
    "..",
    "=>",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    "#",
    "!",
    "&&",
    "\n",
    " ",
    "\t",
    "\\",
    "\"",
    "'",
    "é",
    "→",
    "🦀",
    "acmp-lint: allow(raw-stderr)",
];

fn soup(pieces: &[usize]) -> String {
    pieces
        .iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn token_soup_never_panics_and_spans_partition(
        pieces in prop::collection::vec(any::<usize>(), 0..64)
    ) {
        let text = soup(&pieces);
        let tokens = lex(&text);

        // Spans partition the input: contiguous, in order, ending at EOF.
        let mut at = 0usize;
        for tok in &tokens {
            prop_assert_eq!(tok.start, at, "gap or overlap before a token");
            prop_assert!(tok.end > tok.start, "empty token span");
            at = tok.end;
        }
        prop_assert_eq!(at, text.len(), "spans must cover the whole input");

        // Concatenating the token texts round-trips the source bytes.
        let rebuilt: String = tokens.iter().map(|t| t.text(&text)).collect();
        prop_assert_eq!(rebuilt, text);
    }

    #[test]
    fn line_and_column_positions_are_consistent(
        pieces in prop::collection::vec(any::<usize>(), 0..48)
    ) {
        let text = soup(&pieces);
        let tokens = lex(&text);
        let mut line = 1u32;
        let mut col = 1u32; // columns are 1-based BYTE offsets (see diag.rs)
        for tok in &tokens {
            prop_assert_eq!((tok.line, tok.col), (line, col), "position drift");
            for c in tok.text(&text).chars() {
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += u32::try_from(c.len_utf8()).unwrap_or(1);
                }
            }
        }
    }

    #[test]
    fn code_kinds_never_swallow_comment_text(
        pieces in prop::collection::vec(any::<usize>(), 0..48)
    ) {
        // A comment's text starts with its marker; a whitespace token is
        // all whitespace.  (String/char tokens legitimately contain
        // anything, including comment markers.)
        let text = soup(&pieces);
        for tok in lex(&text) {
            let s = tok.text(&text);
            match tok.kind {
                TokenKind::LineComment => prop_assert!(s.starts_with("//")),
                TokenKind::BlockComment => prop_assert!(s.starts_with("/*")),
                TokenKind::Whitespace => {
                    prop_assert!(s.chars().all(char::is_whitespace));
                }
                _ => {}
            }
        }
    }
}
