//! Golden corpus: every rule fires on its known-bad fixture, stays silent
//! on clean and properly-waived code, and reports in stable order.
//!
//! Each `corpus/*.rs` (or `.toml`, for manifest rules) opens with a
//! `//@ path:` (resp. `#@ path:`) directive naming the virtual
//! workspace-relative path the fixture pretends to live at — that is what
//! scopes the rules.  The blessed diagnostics live next to each fixture
//! as `*.expected`; re-bless after an intentional rule change with
//! `UPDATE_FIXTURES=1 cargo test -p acmp-lint --test corpus`.

use acmp_lint::{lint, Diagnostic, ManifestFile, SourceFile};
use std::fs;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn render(diags: &[Diagnostic]) -> String {
    diags.iter().map(|d| d.render() + "\n").collect()
}

/// The `path:` directive on the fixture's first line.
fn virtual_path(fixture: &Path, text: &str) -> String {
    text.lines()
        .next()
        .and_then(|line| {
            line.trim_start_matches("//@")
                .trim_start_matches("#@")
                .trim()
                .strip_prefix("path:")
        })
        .map(str::trim)
        .unwrap_or_else(|| panic!("{} lacks a `path:` first-line directive", fixture.display()))
        .to_string()
}

#[test]
fn corpus_matches_blessed_expectations() {
    let dir = corpus_dir();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs" || e == "toml"))
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty(), "corpus must not be empty");

    let bless = std::env::var_os("UPDATE_FIXTURES").is_some();
    let mut failures = Vec::new();
    let mut rules_seen: Vec<&str> = Vec::new();

    for fixture in &fixtures {
        let text = fs::read_to_string(fixture).expect("readable fixture");
        let rel = virtual_path(fixture, &text);
        // Each fixture is linted in isolation, as a full run, so waiver
        // hygiene (bad-waiver / unused-waiver) is part of the goldens.
        let diags = if fixture.extension().is_some_and(|e| e == "toml") {
            lint(&[], &[ManifestFile { rel, text }], None)
        } else {
            lint(&[SourceFile::analyze(&rel, text)], &[], None)
        };
        for d in &diags {
            if !rules_seen.contains(&d.rule) {
                rules_seen.push(d.rule);
            }
        }
        let got = render(&diags);
        let expected_path = fixture.with_extension("expected");
        if bless {
            fs::write(&expected_path, &got).expect("bless writes the golden");
            continue;
        }
        let want = fs::read_to_string(&expected_path).unwrap_or_default();
        if got != want {
            failures.push(format!(
                "== {} ==\n--- expected ---\n{want}--- got ---\n{got}",
                fixture.display()
            ));
        }
    }

    assert!(
        failures.is_empty(),
        "corpus diverged from blessed goldens (UPDATE_FIXTURES=1 re-blesses):\n{}",
        failures.join("\n")
    );

    // Coverage guard: the corpus must exercise every rule (plus the two
    // engine-level waiver-hygiene rules), so a new rule without a fixture
    // fails here rather than shipping untested.
    if !bless {
        for rule in acmp_lint::rule_ids()
            .into_iter()
            .chain(["bad-waiver", "unused-waiver"])
        {
            assert!(
                rules_seen.contains(&rule),
                "no corpus fixture makes rule `{rule}` fire"
            );
        }
    }
}

#[test]
fn single_rule_runs_filter_the_corpus() {
    // --rule ID runs one rule and skips waiver hygiene entirely.
    let fixture = corpus_dir().join("waived.rs");
    let text = fs::read_to_string(&fixture).expect("readable fixture");
    let rel = virtual_path(&fixture, &text);
    let diags = lint(
        &[SourceFile::analyze(&rel, text)],
        &[],
        Some("unwrap-in-lib"),
    );
    let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(
        rules,
        vec!["unwrap-in-lib"],
        "filtered run reports only the requested rule, no waiver hygiene"
    );
}
