//! The workspace itself must stay lint-clean: every real finding is
//! either fixed or carries a justified inline waiver.  This is the same
//! check CI's `lint` job runs via the CLI.

use acmp_lint::{lint_workspace, load_workspace};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_lint_clean() {
    let diags = lint_workspace(&workspace_root(), None).expect("workspace is readable");
    assert!(
        diags.is_empty(),
        "the workspace has lint findings (fix them or add a justified \
         `// acmp-lint: allow(rule) -- why` waiver):\n{}",
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_walk_actually_covers_the_workspace() {
    // Guard against the walker silently going blind: the real workspace
    // has >100 Rust files across crates/, root tests/ and examples/, and
    // every shim manifest must be present for shim-drift to mean anything.
    let (files, manifests) = load_workspace(&workspace_root()).expect("workspace is readable");
    assert!(
        files.len() > 100,
        "workspace walk found only {} Rust files",
        files.len()
    );
    for shim in [
        "criterion",
        "parking_lot",
        "proptest",
        "rand",
        "rand_chacha",
        "serde",
        "serde_derive",
        "serde_json",
    ] {
        let rel = format!("shims/{shim}/Cargo.toml");
        assert!(
            manifests.iter().any(|m| m.rel == rel),
            "shim manifest {rel} missing from the walk"
        );
    }
    // Spot-check classification on files whose kind the rules depend on.
    let kind_of = |rel: &str| {
        files
            .iter()
            .find(|f| f.rel == rel)
            .unwrap_or_else(|| panic!("{rel} missing from the walk"))
            .kind
    };
    assert_eq!(
        kind_of("crates/acmp-sweep/src/bin/sweep.rs"),
        acmp_lint::FileKind::Bin
    );
    assert_eq!(
        kind_of("crates/acmp-store/src/store.rs"),
        acmp_lint::FileKind::Lib
    );
    assert_eq!(
        kind_of("examples/design_space.rs"),
        acmp_lint::FileKind::Example
    );
}
