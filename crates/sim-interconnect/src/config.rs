//! Bus configuration.

use serde::{Deserialize, Serialize};

/// Arbitration policy of a shared bus.
///
/// The paper uses round-robin (Table I); fixed priority is provided for
/// ablation studies of the fetch/arbitration policy mentioned in the
/// conclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Arbitration {
    /// Rotating priority: the requester after the last granted one is
    /// considered first.
    #[default]
    RoundRobin,
    /// Fixed priority by requester index (lower index wins).
    FixedPriority,
}

/// Parameters of one instruction bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BusConfig {
    /// Propagation latency in cycles, charged once per transaction on top of
    /// any waiting time (Table I: 2 cycles).
    pub latency: u64,
    /// Bus width in bytes (Table I: 32 B).
    pub width_bytes: u64,
    /// Cache-line size in bytes; a line transfer occupies the bus for
    /// `line_size / width_bytes` cycles.
    pub line_size: u64,
    /// Arbitration policy.
    pub arbitration: Arbitration,
}

impl BusConfig {
    /// Creates a validated bus configuration.
    ///
    /// # Panics
    ///
    /// Panics if `width_bytes` or `line_size` is zero, or if the line size is
    /// not a multiple of the bus width.
    pub fn new(latency: u64, width_bytes: u64, line_size: u64, arbitration: Arbitration) -> Self {
        assert!(width_bytes > 0, "bus width must be positive");
        assert!(line_size > 0, "line size must be positive");
        assert!(
            line_size.is_multiple_of(width_bytes),
            "line size {line_size} must be a multiple of the bus width {width_bytes}"
        );
        BusConfig {
            latency,
            width_bytes,
            line_size,
            arbitration,
        }
    }

    /// The paper's I-bus: 2-cycle latency, 32 B wide, 64 B lines,
    /// round-robin arbitration.
    pub fn paper_single_bus() -> Self {
        BusConfig::new(2, 32, 64, Arbitration::RoundRobin)
    }

    /// Number of cycles a line transfer occupies the bus.
    pub fn beats_per_line(&self) -> u64 {
        self.line_size / self.width_bytes
    }

    /// Minimum (contention-free) transaction latency: propagation plus the
    /// data transfer.
    pub fn unloaded_latency(&self) -> u64 {
        self.latency + self.beats_per_line()
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig::paper_single_bus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bus_has_two_beats() {
        let c = BusConfig::paper_single_bus();
        assert_eq!(c.beats_per_line(), 2);
        assert_eq!(c.unloaded_latency(), 4);
        assert_eq!(c.arbitration, Arbitration::RoundRobin);
    }

    #[test]
    fn wider_bus_has_fewer_beats() {
        let c = BusConfig::new(2, 64, 64, Arbitration::RoundRobin);
        assert_eq!(c.beats_per_line(), 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the bus width")]
    fn rejects_mismatched_width() {
        BusConfig::new(2, 48, 64, Arbitration::RoundRobin);
    }

    #[test]
    fn default_is_paper_bus() {
        assert_eq!(BusConfig::default(), BusConfig::paper_single_bus());
    }
}
