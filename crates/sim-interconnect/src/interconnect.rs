//! The I-cache interconnect: one or more buses with line interleaving.

use crate::bus::{Bus, Grant};
use crate::config::BusConfig;
use crate::stats::BusStats;

/// The interconnect between a group of lean cores and their shared I-cache.
///
/// With one bus this is the paper's *single bus* configuration; with two,
/// the *double bus* configuration where even-indexed lines use bus 0 and
/// odd-indexed lines use bus 1 (matching the even/odd bank interleaving of
/// the multi-banked shared cache).
#[derive(Debug)]
pub struct IcacheInterconnect {
    buses: Vec<Bus>,
    line_size: u64,
}

impl IcacheInterconnect {
    /// Creates an interconnect with `num_buses` buses serving
    /// `num_requesters` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_buses` is zero or `num_requesters` is zero.
    pub fn new(config: BusConfig, num_buses: usize, num_requesters: usize) -> Self {
        assert!(num_buses > 0, "interconnect needs at least one bus");
        IcacheInterconnect {
            buses: (0..num_buses)
                .map(|_| Bus::new(config, num_requesters))
                .collect(),
            line_size: config.line_size,
        }
    }

    /// Number of buses.
    pub fn num_buses(&self) -> usize {
        self.buses.len()
    }

    /// The bus configuration (identical for every bus).
    pub fn config(&self) -> &BusConfig {
        self.buses[0].config()
    }

    /// Returns the bus index serving the line containing `addr`.
    pub fn bus_of(&self, addr: u64) -> usize {
        ((addr / self.line_size) % self.buses.len() as u64) as usize
    }

    /// Submits a request for the line containing `addr` from `requester`.
    pub fn submit(&mut self, cycle: u64, requester: usize, addr: u64) {
        let bus = self.bus_of(addr);
        self.buses[bus].submit(cycle, requester, addr & !(self.line_size - 1));
    }

    /// Advances every bus by one cycle; each bus may grant one transaction.
    pub fn tick(&mut self, cycle: u64) -> Vec<Grant> {
        self.buses
            .iter_mut()
            .filter_map(|b| b.tick(cycle))
            .collect()
    }

    /// Returns `true` if no bus has pending or in-flight work at `cycle`.
    pub fn is_idle(&self, cycle: u64) -> bool {
        self.buses.iter().all(|b| b.is_idle(cycle))
    }

    /// Total pending requests across buses.
    pub fn pending_requests(&self) -> usize {
        self.buses.iter().map(|b| b.pending_requests()).sum()
    }

    /// Aggregated statistics over all buses.
    pub fn stats(&self) -> BusStats {
        let mut total = BusStats::default();
        for b in &self.buses {
            total.merge(b.stats());
        }
        total
    }

    /// Per-bus statistics.
    pub fn per_bus_stats(&self) -> Vec<&BusStats> {
        self.buses.iter().map(|b| b.stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bus_serialises_requests() {
        let mut ic = IcacheInterconnect::new(BusConfig::paper_single_bus(), 1, 4);
        ic.submit(0, 0, 0x0000);
        ic.submit(0, 1, 0x0040);
        let g0 = ic.tick(0);
        assert_eq!(g0.len(), 1);
        assert!(ic.tick(1).is_empty());
        let g1 = ic.tick(2);
        assert_eq!(g1.len(), 1);
        assert_eq!(g1[0].wait_cycles, 2);
    }

    #[test]
    fn double_bus_serves_even_and_odd_lines_in_parallel() {
        let mut ic = IcacheInterconnect::new(BusConfig::paper_single_bus(), 2, 4);
        assert_eq!(ic.bus_of(0x0000), 0);
        assert_eq!(ic.bus_of(0x0040), 1);
        assert_eq!(ic.bus_of(0x0080), 0);
        ic.submit(0, 0, 0x0000);
        ic.submit(0, 1, 0x0040);
        let grants = ic.tick(0);
        assert_eq!(grants.len(), 2);
        assert!(grants.iter().all(|g| g.wait_cycles == 0));
    }

    #[test]
    fn double_bus_still_contends_within_a_bank() {
        let mut ic = IcacheInterconnect::new(BusConfig::paper_single_bus(), 2, 4);
        // Both requests target even lines -> same bus.
        ic.submit(0, 0, 0x0000);
        ic.submit(0, 1, 0x0080);
        assert_eq!(ic.tick(0).len(), 1);
        assert!(ic.tick(1).is_empty());
        assert_eq!(ic.tick(2).len(), 1);
    }

    #[test]
    fn aggregate_stats_cover_all_buses() {
        let mut ic = IcacheInterconnect::new(BusConfig::paper_single_bus(), 2, 2);
        ic.submit(0, 0, 0x0000);
        ic.submit(0, 1, 0x0040);
        ic.tick(0);
        let s = ic.stats();
        assert_eq!(s.transactions, 2);
        assert_eq!(s.busy_cycles, 4);
        assert_eq!(ic.per_bus_stats().len(), 2);
        assert_eq!(ic.num_buses(), 2);
        assert!(ic.is_idle(10));
        assert_eq!(ic.pending_requests(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bus")]
    fn zero_buses_rejected() {
        IcacheInterconnect::new(BusConfig::paper_single_bus(), 0, 1);
    }

    #[test]
    fn submitted_addresses_are_line_aligned_in_grants() {
        let mut ic = IcacheInterconnect::new(BusConfig::paper_single_bus(), 1, 1);
        ic.submit(0, 0, 0x1234);
        let g = ic.tick(0);
        assert_eq!(g[0].line_addr, 0x1200 & !0x3f);
    }
}
