//! A single arbitrated instruction bus.

use crate::config::{Arbitration, BusConfig};
use crate::stats::BusStats;
use std::collections::VecDeque;

/// A granted bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The requester (core index) that won arbitration.
    pub requester: usize,
    /// The line address being transferred.
    pub line_addr: u64,
    /// Cycle at which the request was submitted.
    pub submit_cycle: u64,
    /// Cycle at which the bus was granted.
    pub grant_cycle: u64,
    /// Cycles spent waiting for the grant (`grant_cycle - submit_cycle`);
    /// this is the *contention* component of the CPI stack.
    pub wait_cycles: u64,
    /// Cycle at which the transfer (propagation + data beats) completes and
    /// the line is available at the receiving end.
    pub transfer_done_cycle: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    requester: usize,
    line_addr: u64,
    submit_cycle: u64,
}

/// A single bus shared by several requesters.
///
/// Usage per simulated cycle:
///
/// 1. every requester that needs a line calls [`Bus::submit`];
/// 2. the machine calls [`Bus::tick`], which grants at most one new
///    transaction if the wire is free, according to the arbitration policy.
///
/// A requester may have several requests pending (one per line buffer).
#[derive(Debug)]
pub struct Bus {
    config: BusConfig,
    num_requesters: usize,
    pending: VecDeque<Pending>,
    /// First cycle at which the wire is free again.
    free_at: u64,
    /// Requester index that was granted most recently (round-robin state).
    last_granted: usize,
    stats: BusStats,
}

impl Bus {
    /// Creates a bus for `num_requesters` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `num_requesters` is zero.
    pub fn new(config: BusConfig, num_requesters: usize) -> Self {
        assert!(num_requesters > 0, "a bus needs at least one requester");
        Bus {
            config,
            num_requesters,
            pending: VecDeque::new(),
            free_at: 0,
            last_granted: num_requesters - 1,
            stats: BusStats::new(num_requesters),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Number of requests waiting for a grant.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if the wire is idle at `cycle` and nothing is queued.
    pub fn is_idle(&self, cycle: u64) -> bool {
        self.pending.is_empty() && cycle >= self.free_at
    }

    /// Submits a request for `line_addr` from `requester` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `requester` is out of range.
    pub fn submit(&mut self, cycle: u64, requester: usize, line_addr: u64) {
        assert!(
            requester < self.num_requesters,
            "requester {requester} out of range (bus has {} requesters)",
            self.num_requesters
        );
        self.pending.push_back(Pending {
            requester,
            line_addr,
            submit_cycle: cycle,
        });
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.pending.len());
    }

    /// Advances arbitration at `cycle`, granting at most one transaction.
    pub fn tick(&mut self, cycle: u64) -> Option<Grant> {
        if self.pending.is_empty() || cycle < self.free_at {
            return None;
        }
        let chosen_pos = self.choose(cycle)?;
        let p = self
            .pending
            .remove(chosen_pos)
            .expect("chosen position is valid");

        let wait = cycle - p.submit_cycle;
        let beats = self.config.beats_per_line();
        let done = cycle + self.config.latency + beats;
        // The wire is occupied for the data beats; propagation is pipelined.
        self.free_at = cycle + beats;
        self.last_granted = p.requester;

        self.stats.transactions += 1;
        self.stats.busy_cycles += beats;
        self.stats.wait_cycles += wait;
        self.stats.per_requester[p.requester] += 1;

        Some(Grant {
            requester: p.requester,
            line_addr: p.line_addr,
            submit_cycle: p.submit_cycle,
            grant_cycle: cycle,
            wait_cycles: wait,
            transfer_done_cycle: done,
        })
    }

    /// Chooses the index (in the pending queue) of the next request to
    /// grant.  Only requests submitted strictly before or at `cycle` are
    /// eligible.
    fn choose(&self, cycle: u64) -> Option<usize> {
        let eligible = |p: &Pending| p.submit_cycle <= cycle;
        match self.config.arbitration {
            Arbitration::FixedPriority => self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| eligible(p))
                .min_by_key(|(pos, p)| (p.requester, *pos))
                .map(|(pos, _)| pos),
            Arbitration::RoundRobin => {
                // Rotating priority: requester (last_granted + 1) has the
                // highest priority, then (last_granted + 2), and so on.
                let n = self.num_requesters;
                let priority = |r: usize| (r + n - (self.last_granted + 1) % n) % n;
                self.pending
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| eligible(p))
                    .min_by_key(|(pos, p)| (priority(p.requester), *pos))
                    .map(|(pos, _)| pos)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(n: usize) -> Bus {
        Bus::new(BusConfig::paper_single_bus(), n)
    }

    #[test]
    fn unloaded_transaction_has_no_wait() {
        let mut b = bus(2);
        b.submit(0, 0, 0x1000);
        let g = b.tick(0).expect("grant");
        assert_eq!(g.wait_cycles, 0);
        assert_eq!(g.grant_cycle, 0);
        assert_eq!(g.transfer_done_cycle, 4); // 2 latency + 2 beats
        assert!(b.tick(1).is_none(), "bus busy during the beats");
        assert!(b.is_idle(2));
    }

    #[test]
    fn second_requester_waits_for_the_beats() {
        let mut b = bus(2);
        b.submit(0, 0, 0x1000);
        b.submit(0, 1, 0x2000);
        let g0 = b.tick(0).unwrap();
        assert!(b.tick(1).is_none());
        let g1 = b.tick(2).unwrap();
        assert_eq!(g0.requester, 0);
        assert_eq!(g1.requester, 1);
        assert_eq!(g1.wait_cycles, 2);
        assert_eq!(b.stats().wait_cycles, 2);
        assert_eq!(b.stats().transactions, 2);
        assert_eq!(b.stats().busy_cycles, 4);
    }

    #[test]
    fn round_robin_rotates_priority() {
        let mut b = bus(4);
        // All four cores request at cycle 0.
        for r in 0..4 {
            b.submit(0, r, 0x1000 + r as u64 * 0x40);
        }
        let mut order = Vec::new();
        let mut cycle = 0;
        while order.len() < 4 {
            if let Some(g) = b.tick(cycle) {
                order.push(g.requester);
            }
            cycle += 1;
        }
        assert_eq!(
            order,
            vec![0, 1, 2, 3],
            "initial rotation starts at requester 0"
        );

        // Now core 2 and core 0 request; after the last grant went to 3,
        // priority order is 0,1,2,3 again and 0 wins; then after 0 is
        // granted, 2 wins over a newly arrived 1.
        b.submit(cycle, 0, 0x5000);
        b.submit(cycle, 2, 0x5040);
        let g = loop {
            if let Some(g) = b.tick(cycle) {
                break g;
            }
            cycle += 1;
        };
        assert_eq!(g.requester, 0);
    }

    #[test]
    fn round_robin_is_fair_under_saturation() {
        let mut b = bus(4);
        let mut grants = vec![0u64; 4];
        for cycle in 0..4000u64 {
            // Keep every requester's queue non-empty.
            if cycle % 2 == 0 {
                for r in 0..4 {
                    b.submit(cycle, r, cycle * 0x40 + r as u64);
                }
            }
            if let Some(g) = b.tick(cycle) {
                grants[g.requester] += 1;
            }
        }
        let min = *grants.iter().min().unwrap();
        let max = *grants.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "round-robin should be fair under saturation, got {grants:?}"
        );
    }

    #[test]
    fn fixed_priority_starves_lower_priority() {
        let mut b = Bus::new(BusConfig::new(2, 32, 64, Arbitration::FixedPriority), 2);
        let mut grants = [0u64; 2];
        for cycle in 0..100u64 {
            b.submit(cycle, 0, cycle * 64);
            if cycle == 0 {
                b.submit(cycle, 1, 0xffff_0000);
            }
            if let Some(g) = b.tick(cycle) {
                grants[g.requester] += 1;
            }
        }
        assert_eq!(grants[1], 0, "requester 1 is starved by fixed priority");
        assert!(grants[0] > 40);
    }

    #[test]
    fn requests_from_the_future_are_not_granted() {
        let mut b = bus(2);
        b.submit(5, 0, 0x1000);
        assert!(b.tick(3).is_none());
        assert!(b.tick(5).is_some());
    }

    #[test]
    fn queue_depth_is_tracked() {
        let mut b = bus(4);
        for r in 0..4 {
            b.submit(0, r, r as u64 * 64);
        }
        assert_eq!(b.pending_requests(), 4);
        assert_eq!(b.stats().max_queue_depth, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn submit_checks_requester_range() {
        let mut b = bus(2);
        b.submit(0, 7, 0x0);
    }
}
