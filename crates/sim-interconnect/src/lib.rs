//! Shared instruction-bus models for the shared-I-cache ACMP.
//!
//! The paper connects the lean cores to their shared I-cache with a bus:
//! 32 bytes wide, 2 cycles of latency plus contention, round-robin
//! arbitration (Table I).  The "more bandwidth" design point replaces the
//! single bus with one bus per cache bank (two banks interleaved by even/odd
//! line address), doubling the peak line bandwidth.
//!
//! This crate provides:
//!
//! * [`BusConfig`] — width/latency/line-size parameters and the derived
//!   occupancy (beats) per line transfer.
//! * [`Bus`] — a single arbitrated bus: requests are submitted, granted in
//!   round-robin order when the wire is free, and each grant reports how
//!   long the requester waited (the *contention* component of the paper's
//!   CPI stacks) and when the transfer completes.
//! * [`IcacheInterconnect`] — one or more buses with line-address
//!   interleaving (the single-bus and double-bus configurations of the
//!   paper), plus aggregate statistics.
//!
//! # Example
//!
//! ```
//! use sim_interconnect::{BusConfig, IcacheInterconnect};
//!
//! // Two cores share a double-bus interconnect.
//! let mut ic = IcacheInterconnect::new(BusConfig::paper_single_bus(), 2, 4);
//! ic.submit(0, 1, 0x0000); // even line -> bus 0
//! ic.submit(0, 3, 0x0040); // odd line  -> bus 1
//! let grants = ic.tick(0);
//! assert_eq!(grants.len(), 2, "different banks are served in parallel");
//! ```

pub mod bus;
pub mod config;
pub mod interconnect;
pub mod stats;

pub use bus::{Bus, Grant};
pub use config::{Arbitration, BusConfig};
pub use interconnect::IcacheInterconnect;
pub use stats::BusStats;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Bus>();
        assert_send_sync::<IcacheInterconnect>();
        assert_send_sync::<BusStats>();
        assert_send_sync::<BusConfig>();
    }
}
