//! Bus statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a bus (or aggregated over the buses of an
/// interconnect).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BusStats {
    /// Transactions granted.
    pub transactions: u64,
    /// Cycles during which a transfer occupied the bus.
    pub busy_cycles: u64,
    /// Total cycles requests spent waiting for a grant (the paper's
    /// "contention").
    pub wait_cycles: u64,
    /// Largest number of simultaneously pending requests observed.
    pub max_queue_depth: usize,
    /// Per-requester transaction counts (index = requester id).
    pub per_requester: Vec<u64>,
}

impl BusStats {
    /// Creates zeroed statistics with room for `num_requesters` requesters.
    pub fn new(num_requesters: usize) -> Self {
        BusStats {
            per_requester: vec![0; num_requesters],
            ..BusStats::default()
        }
    }

    /// Average grant wait in cycles per transaction; 0 with no transactions.
    pub fn avg_wait(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.wait_cycles as f64 / self.transactions as f64
        }
    }

    /// Bus utilisation over `total_cycles` simulated cycles, in `[0, 1]`.
    pub fn utilisation(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total_cycles as f64
        }
    }

    /// Merges another statistics block into this one (used to aggregate the
    /// buses of a double-bus interconnect).
    pub fn merge(&mut self, other: &BusStats) {
        self.transactions += other.transactions;
        self.busy_cycles += other.busy_cycles;
        self.wait_cycles += other.wait_cycles;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        if self.per_requester.len() < other.per_requester.len() {
            self.per_requester.resize(other.per_requester.len(), 0);
        }
        for (i, v) in other.per_requester.iter().enumerate() {
            self.per_requester[i] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_utilisation() {
        let s = BusStats {
            transactions: 10,
            busy_cycles: 20,
            wait_cycles: 5,
            max_queue_depth: 3,
            per_requester: vec![4, 6],
        };
        assert!((s.avg_wait() - 0.5).abs() < 1e-12);
        assert!((s.utilisation(100) - 0.2).abs() < 1e-12);
        assert_eq!(s.utilisation(0), 0.0);
        assert_eq!(BusStats::new(2).avg_wait(), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_extends_requesters() {
        let mut a = BusStats {
            transactions: 1,
            busy_cycles: 2,
            wait_cycles: 3,
            max_queue_depth: 1,
            per_requester: vec![1],
        };
        let b = BusStats {
            transactions: 10,
            busy_cycles: 20,
            wait_cycles: 30,
            max_queue_depth: 4,
            per_requester: vec![5, 5],
        };
        a.merge(&b);
        assert_eq!(a.transactions, 11);
        assert_eq!(a.max_queue_depth, 4);
        assert_eq!(a.per_requester, vec![6, 5]);
    }
}
