//! The lock-cheap per-thread event recorder.
//!
//! Every thread buffers its events in its own `Arc<Mutex<Vec<Event>>>`,
//! registered once in a global list the first time the thread records.
//! The hot emit path locks only the thread's own (uncontended) buffer;
//! [`drain_events`] walks the registry, takes every buffer's contents —
//! live threads included — and sorts them into a stable
//! `(t_ns, thread, seq)` order.  Each thread stamps its events with a
//! process-unique thread number and a per-thread sequence counter, which
//! is what lets tests prove the recorder loses nothing and preserves
//! per-thread order under concurrency.
//!
//! Draining through the registry (rather than an exit-time flush) matters
//! for scoped worker pools: `std::thread::scope` unblocks the parent as
//! soon as each closure returns, *before* the worker's thread-locals are
//! torn down, so a flush-on-drop design would race the parent's drain.
//! Here the parent's join gives it happens-before on everything a worker
//! pushed, and the registry makes those buffers reachable.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What kind of event a trace line describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A timed scope: `t_ns` is its start, `dur_ns` its length.
    Span,
    /// An instant event: `t_ns` is its emit time.
    Instant,
    /// A structured log line (see [`logline!`](crate::logline)).
    Log,
}

impl EventKind {
    /// The kind's spelling in trace JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
            EventKind::Log => "log",
        }
    }
}

/// A dynamically-typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string field.
    Str(String),
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A floating-point field.
    F64(f64),
    /// A boolean field.
    Bool(bool),
}

impl FieldValue {
    /// The field as a JSON value.
    #[must_use]
    pub fn to_value(&self) -> serde::Value {
        match self {
            FieldValue::Str(s) => serde::Value::String(s.clone()),
            FieldValue::U64(n) => serde::Value::UInt(*n),
            FieldValue::I64(n) => {
                if *n >= 0 {
                    serde::Value::UInt(*n as u64)
                } else {
                    serde::Value::Int(*n)
                }
            }
            FieldValue::F64(x) => serde::Value::Float(*x),
            FieldValue::Bool(b) => serde::Value::Bool(*b),
        }
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> Self {
        FieldValue::Str(v.clone())
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Nanoseconds since the process's observability epoch (span start for
    /// spans, emit time otherwise).
    pub t_ns: u64,
    /// Process-unique recorder thread number.
    pub thread: u32,
    /// Per-thread emission sequence number (gapless, starting at 0).
    pub seq: u64,
    /// Span, instant, or log.
    pub kind: EventKind,
    /// The event's canonical name (see [`names`](crate::names)).
    pub name: &'static str,
    /// Measured duration, spans only.
    pub dur_ns: Option<u64>,
    /// Attached key=value fields, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Every live (and not-yet-pruned dead) thread's buffer, in registration
/// order.  Lock ordering: `REGISTRY` before any individual buffer.
static REGISTRY: Mutex<Vec<Arc<Mutex<Vec<Event>>>>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

struct LocalBuf {
    thread: u32,
    seq: u64,
    events: Arc<Mutex<Vec<Event>>>,
}

impl LocalBuf {
    fn new() -> Self {
        let events = Arc::new(Mutex::new(Vec::new()));
        REGISTRY.lock().push(Arc::clone(&events));
        LocalBuf {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            seq: 0,
            events,
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

pub(crate) fn record(
    kind: EventKind,
    name: &'static str,
    t_ns: u64,
    dur_ns: Option<u64>,
    fields: Vec<(&'static str, FieldValue)>,
) {
    let _ = LOCAL.try_with(|local| {
        let mut buf = local.borrow_mut();
        let event = Event {
            t_ns,
            thread: buf.thread,
            seq: buf.seq,
            kind,
            name,
            dur_ns,
            fields,
        };
        buf.seq += 1;
        buf.events.lock().push(event);
    });
}

/// Records an instant event now.  Callers normally go through
/// [`event!`](crate::event), which also gates on [`events_enabled`](crate::events_enabled).
pub fn emit_event(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    record(EventKind::Instant, name, crate::now_ns(), None, fields);
}

/// Records one structured log line (the event half of
/// [`logline!`](crate::logline)).
pub fn emit_log(text: &str) {
    record(
        EventKind::Log,
        crate::names::LOG,
        crate::now_ns(),
        None,
        vec![("msg", FieldValue::Str(text.to_string()))],
    );
}

/// Takes every recorded event, sorted by `(t_ns, thread, seq)`.
///
/// Reads every registered thread's buffer, live threads included: events
/// a worker recorded before its closure returned are visible to a parent
/// that joined it (the join provides the happens-before edge).  Buffers
/// whose thread has exited are pruned from the registry once emptied.
pub fn drain_events() -> Vec<Event> {
    let mut events = Vec::new();
    {
        let mut registry = REGISTRY.lock();
        for buf in registry.iter() {
            // acmp-lint: allow(nested-lock) -- registry→buffer is the one global lock order; buffers are leaf locks never held across calls
            events.append(&mut buf.lock());
        }
        // A buffer referenced only by the registry belongs to a dead
        // thread; it can no longer receive events, so drop it.
        registry.retain(|buf| Arc::strong_count(buf) > 1);
    }
    events.sort_by_key(|e| (e.t_ns, e.thread, e.seq));
    events
}

/// An open timed span; records on drop.  Produced by
/// [`span!`](crate::span); a disabled guard is an empty shell that does
/// nothing and allocated nothing.
#[must_use = "bind to a named variable; dropping immediately times nothing"]
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    name: &'static str,
    t_ns: u64,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// Opens a live span (some sink is attached).
    pub fn begin(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Self {
        SpanGuard(Some(ActiveSpan {
            name,
            t_ns: crate::now_ns(),
            start: Instant::now(),
            fields,
        }))
    }

    /// The no-op guard the disabled path returns.
    pub fn disabled() -> Self {
        SpanGuard(None)
    }

    /// Renames the span before it closes — how a span opened at the top of
    /// an operation reports which outcome path it took (e.g.
    /// `engine.simulate_cell.simulate` vs `….memory_hit`).  No-op on a
    /// disabled guard.
    pub fn set_name(&mut self, name: &'static str) {
        if let Some(active) = &mut self.0 {
            active.name = name;
        }
    }

    /// Appends a field discovered mid-span (an outcome, a row count).
    /// No-op on a disabled guard.
    pub fn record_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(active) = &mut self.0 {
            active.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let dur_ns = u64::try_from(active.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if crate::metrics_enabled() {
            crate::registry().histogram_record(active.name, dur_ns);
        }
        if crate::events_enabled() {
            record(
                EventKind::Span,
                active.name,
                active.t_ns,
                Some(dur_ns),
                active.fields,
            );
        }
    }
}
