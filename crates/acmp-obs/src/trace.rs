//! The JSONL trace format: one header line naming the schema, then one
//! JSON object per event.
//!
//! Events print in `(t_ns, thread, seq)` order with a fixed field order,
//! so two drains of the same recorded history are byte-identical.  The
//! reader is a strict validator (unknown keys and malformed events are
//! errors), which lets `sweep trace report` double as the trace schema
//! check in CI.  A coordinator re-emits its shard children's events tagged
//! with [`tag_shard`] — timestamps are per-process, so the tag (not the
//! clock) is what attributes an event to its process.

use crate::recorder::Event;
use serde::Value;
use std::io::Write;

/// The trace header's schema identifier.
pub const TRACE_SCHEMA: &str = "acmp-obs-trace/v1";

/// The header line (no trailing newline).
#[must_use]
pub fn header_value() -> Value {
    Value::Object(vec![(
        "schema".to_string(),
        Value::String(TRACE_SCHEMA.to_string()),
    )])
}

/// One event as a JSON object with fixed field order.
#[must_use]
pub fn event_to_value(event: &Event) -> Value {
    let mut fields = vec![
        ("t_ns".to_string(), Value::UInt(event.t_ns)),
        ("thread".to_string(), Value::UInt(u64::from(event.thread))),
        ("seq".to_string(), Value::UInt(event.seq)),
        (
            "kind".to_string(),
            Value::String(event.kind.as_str().to_string()),
        ),
        ("name".to_string(), Value::String(event.name.to_string())),
    ];
    if let Some(dur) = event.dur_ns {
        fields.push(("dur_ns".to_string(), Value::UInt(dur)));
    }
    fields.push((
        "fields".to_string(),
        Value::Object(
            event
                .fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.to_value()))
                .collect(),
        ),
    ));
    Value::Object(fields)
}

/// Writes a complete trace: header line, then one line per value (values
/// must already be event objects, e.g. from [`event_to_value`] or
/// [`read_trace_values`]).
///
/// # Errors
///
/// Returns the I/O error if writing fails.
pub fn write_values<W: Write>(writer: &mut W, events: &[Value]) -> std::io::Result<()> {
    writeln!(writer, "{}", header_value())?;
    for event in events {
        writeln!(writer, "{event}")?;
    }
    Ok(())
}

/// [`write_values`] over freshly drained [`Event`]s.
///
/// # Errors
///
/// Returns the I/O error if writing fails.
pub fn write_trace<W: Write>(writer: &mut W, events: &[Event]) -> std::io::Result<()> {
    let values: Vec<Value> = events.iter().map(event_to_value).collect();
    write_values(writer, &values)
}

/// Strictly validates one event object.
///
/// # Errors
///
/// Names the first violation (missing or mistyped required field, unknown
/// key, unknown kind).
pub fn validate_event_value(value: &Value) -> Result<(), String> {
    let fields = value
        .as_object()
        .ok_or_else(|| "event is not an object".to_string())?;
    for (key, _) in fields {
        if !matches!(
            key.as_str(),
            "t_ns" | "thread" | "seq" | "kind" | "name" | "dur_ns" | "fields" | "shard"
        ) {
            return Err(format!("event has unknown field `{key}`"));
        }
    }
    for key in ["t_ns", "thread", "seq"] {
        match serde::get_field(fields, key) {
            Ok(Value::UInt(_)) => {}
            _ => return Err(format!("event field `{key}` is missing or not a uint")),
        }
    }
    let kind = match serde::get_field(fields, "kind") {
        Ok(Value::String(s)) => s.as_str(),
        _ => return Err("event field `kind` is missing or not a string".to_string()),
    };
    if !matches!(kind, "span" | "instant" | "log") {
        return Err(format!("event has unknown kind `{kind}`"));
    }
    match serde::get_field(fields, "name") {
        Ok(Value::String(_)) => {}
        _ => return Err("event field `name` is missing or not a string".to_string()),
    }
    match serde::get_field(fields, "dur_ns") {
        Ok(Value::UInt(_)) => {
            if kind != "span" {
                return Err(format!("a `{kind}` event must not carry `dur_ns`"));
            }
        }
        Ok(_) => return Err("event field `dur_ns` is not a uint".to_string()),
        Err(_) => {
            if kind == "span" {
                return Err("a span event must carry `dur_ns`".to_string());
            }
        }
    }
    match serde::get_field(fields, "fields") {
        Ok(Value::Object(_)) => {}
        _ => return Err("event field `fields` is missing or not an object".to_string()),
    }
    if let Ok(shard) = serde::get_field(fields, "shard") {
        if shard.as_str().is_none() {
            return Err("event field `shard` is not a string".to_string());
        }
    }
    Ok(())
}

/// Parses and strictly validates a whole trace document, returning the
/// event objects (header consumed).
///
/// # Errors
///
/// Names the offending line: a missing or wrong-schema header, unparsable
/// JSON, or an event failing [`validate_event_value`].
pub fn read_trace_values(text: &str) -> Result<Vec<Value>, String> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| "trace is empty (no header line)".to_string())?;
    let header_value: Value =
        serde_json::from_str(header).map_err(|e| format!("trace header is not JSON: {e}"))?;
    match header_value
        .as_object()
        .and_then(|f| serde::get_field(f, "schema").ok())
        .and_then(Value::as_str)
    {
        Some(schema) if schema == TRACE_SCHEMA => {}
        Some(schema) => {
            return Err(format!(
                "unsupported trace schema `{schema}` (want `{TRACE_SCHEMA}`)"
            ))
        }
        None => return Err("trace header carries no schema tag".to_string()),
    }
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("trace line {} is not JSON: {e}", i + 2))?;
        validate_event_value(&value).map_err(|e| format!("trace line {}: {e}", i + 2))?;
        events.push(value);
    }
    Ok(events)
}

/// Tags an event object with the shard that produced it (`"shard":"i/N"`),
/// replacing any existing tag.  Used by the coordinator when folding child
/// traces into its own.
pub fn tag_shard(event: &mut Value, shard: &str) {
    if let Value::Object(fields) = event {
        fields.retain(|(k, _)| k != "shard");
        fields.push(("shard".to_string(), Value::String(shard.to_string())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{EventKind, FieldValue};

    fn sample_event() -> Event {
        Event {
            t_ns: 42,
            thread: 1,
            seq: 7,
            kind: EventKind::Span,
            name: "engine.simulate_cell.simulate",
            dur_ns: Some(1000),
            fields: vec![
                ("benchmark", FieldValue::Str("cg".to_string())),
                ("cells", FieldValue::U64(6)),
            ],
        }
    }

    #[test]
    fn trace_round_trips_through_the_validator() {
        let mut out = Vec::new();
        write_trace(&mut out, &[sample_event()]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("{\"schema\":\"acmp-obs-trace/v1\"}\n"));
        let events = read_trace_values(&text).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0]
                .as_object()
                .and_then(|f| serde::get_field(f, "name").ok())
                .and_then(Value::as_str),
            Some("engine.simulate_cell.simulate")
        );
    }

    #[test]
    fn shard_tags_survive_rewriting() {
        let mut value = event_to_value(&sample_event());
        tag_shard(&mut value, "2/3");
        validate_event_value(&value).unwrap();
        tag_shard(&mut value, "1/3");
        let text = value.to_string();
        assert!(text.contains("\"shard\":\"1/3\""));
        assert!(!text.contains("2/3"), "re-tagging must replace the tag");
    }

    #[test]
    fn validator_names_violations() {
        for (label, line) in [
            (
                "no dur on span",
                r#"{"t_ns":1,"thread":0,"seq":0,"kind":"span","name":"x","fields":{}}"#,
            ),
            (
                "dur on instant",
                r#"{"t_ns":1,"thread":0,"seq":0,"kind":"instant","name":"x","dur_ns":3,"fields":{}}"#,
            ),
            (
                "unknown kind",
                r#"{"t_ns":1,"thread":0,"seq":0,"kind":"weird","name":"x","fields":{}}"#,
            ),
            (
                "unknown key",
                r#"{"t_ns":1,"thread":0,"seq":0,"kind":"log","name":"x","fields":{},"extra":1}"#,
            ),
            (
                "missing fields",
                r#"{"t_ns":1,"thread":0,"seq":0,"kind":"log","name":"x"}"#,
            ),
        ] {
            let value: Value = serde_json::from_str(line).unwrap();
            assert!(validate_event_value(&value).is_err(), "{label}");
        }
        let bad_header = "{\"schema\":\"acmp-obs-trace/v0\"}\n";
        assert!(read_trace_values(bad_header).is_err());
        assert!(read_trace_values("").is_err());
    }
}
