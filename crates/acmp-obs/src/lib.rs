//! `acmp-obs` — structured observability for the sweep stack.
//!
//! The sweep pipeline (scheduler → engine → store → merge) used to be a
//! black box at runtime: end-of-run counters and ad-hoc `eprintln!` lines
//! were all it reported.  This crate is the in-tree substrate that fixes
//! that, shim-style (no registry access, like `shims/serde`):
//!
//! * [`span!`] — a timed scope that records an event (with start time,
//!   duration and key=value fields) into a lock-cheap per-thread recorder
//!   and a duration histogram into the global metrics registry;
//! * [`event!`] — an instant (un-timed) event;
//! * [`counter!`] / [`histogram!`] — aggregated metrics by name;
//! * [`logline!`] — the structured logger behind the CLI's human-readable
//!   stderr lines: prints exactly what `eprintln!` would, and additionally
//!   records a `log` event when tracing is enabled, so a trace file carries
//!   the progress narrative alongside the spans it explains.
//!
//! **Disabled is the default and costs (almost) nothing.**  All macros gate
//! on one relaxed atomic load; field expressions are not evaluated and
//! nothing allocates until a sink is enabled ([`enable_events`] /
//! [`enable_metrics`]).  Observability reads a run, it never shapes it:
//! enabling every sink must leave sweep row output byte-identical.
//!
//! Events drain to a JSONL trace file (schema [`trace::TRACE_SCHEMA`]) and
//! metrics snapshot to a versioned JSON document
//! ([`metrics::METRICS_SCHEMA`]) that `sweep serve` and the future elastic
//! coordinator can consume without churn; [`report::render_report`] turns
//! both back into the per-phase / slowest-cells / cache-efficiency tables
//! of `sweep trace report`.

pub mod metrics;
pub mod recorder;
pub mod report;
pub mod trace;

pub use metrics::{registry, HistogramSnapshot, MetricsSnapshot, Registry, METRICS_SCHEMA};
pub use recorder::{drain_events, Event, EventKind, FieldValue, SpanGuard};
pub use report::render_report;
pub use trace::{
    event_to_value, read_trace_values, tag_shard, validate_event_value, write_trace, write_values,
    TRACE_SCHEMA,
};

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Canonical span, counter and histogram names, so the engine, the CLI,
/// the report renderer and the tests all agree on spelling.
pub mod names {
    /// Span: a grid cell that was actually simulated.
    pub const SIMULATE_CELL_SIMULATE: &str = "engine.simulate_cell.simulate";
    /// Span: a grid cell served from the in-memory cache.
    pub const SIMULATE_CELL_MEMORY_HIT: &str = "engine.simulate_cell.memory_hit";
    /// Span: a grid cell served from the on-disk store.
    pub const SIMULATE_CELL_DISK_HIT: &str = "engine.simulate_cell.disk_hit";
    /// Prefix shared by the three `simulate_cell` outcomes — the report's
    /// slowest-cells table matches on it.
    pub const SIMULATE_CELL_PREFIX: &str = "engine.simulate_cell.";
    /// Span: a benchmark's trace set was generated.
    pub const TRACE_LOAD_GENERATE: &str = "engine.trace_load.generate";
    /// Span: a benchmark's trace set was loaded from the store.
    pub const TRACE_LOAD_DISK_HIT: &str = "engine.trace_load.disk_hit";

    /// Counter: cells simulated (mirrors `EngineStats::simulated`).
    pub const ENGINE_SIMULATED: &str = "engine.simulated";
    /// Counter: in-memory cache hits (mirrors `EngineStats::memory_hits`).
    pub const ENGINE_MEMORY_HITS: &str = "engine.memory_hits";
    /// Counter: disk store hits (mirrors `EngineStats::disk_hits`).
    pub const ENGINE_DISK_HITS: &str = "engine.disk_hits";
    /// Counter: trace sets generated (mirrors `EngineStats::trace_generated`).
    pub const ENGINE_TRACE_GENERATED: &str = "engine.trace_generated";
    /// Counter: trace sets loaded from disk (mirrors
    /// `EngineStats::trace_disk_hits`).
    pub const ENGINE_TRACE_DISK_HITS: &str = "engine.trace_disk_hits";
    /// Counter: trace replay buffer refills in `sim-core` (one per batched
    /// `next_records` call) — the hot-path counter behind
    /// [`count_trace_refill`](crate::count_trace_refill).
    pub const TRACE_REFILLS: &str = "trace.refills";

    /// Span: one pool worker's whole run (fields: jobs/steals/injector pops).
    pub const POOL_WORKER: &str = "pool.worker";
    /// Counter: jobs stolen from sibling deques.
    pub const POOL_STEALS: &str = "pool.steals";
    /// Counter: jobs taken from the global injector.
    pub const POOL_INJECTOR_POPS: &str = "pool.injector_pops";
    /// Counter: jobs executed by the pool.
    pub const POOL_JOBS: &str = "pool.jobs";
    /// Histogram: injector depth right after seeding, per pool run.
    pub const POOL_QUEUE_DEPTH: &str = "pool.queue_depth";

    /// Span: opening (and indexing) the disk store.
    pub const STORE_OPEN: &str = "store.open";
    /// Span: one record append to the store.
    pub const STORE_APPEND: &str = "store.append";
    /// Span: an index refresh over foreign segments.
    pub const STORE_REFRESH: &str = "store.refresh";
    /// Span: a store compaction.
    pub const STORE_COMPACT: &str = "store.compact";
    /// Span: exporting the live records as a bundle.
    pub const STORE_EXPORT: &str = "store.export";
    /// Span: importing a bundle.
    pub const STORE_IMPORT: &str = "store.import";
    /// Span: building the secondary index (a catalog scan over record
    /// values).
    pub const STORE_INDEX_BUILD: &str = "store.index_build";
    /// Span: answering one catalog query.
    pub const STORE_QUERY: &str = "store.query";
    /// Counter: individual record value fetches — store loads plus catalog
    /// scans.  A warm `sweep query` must leave this at zero: the proof the
    /// secondary index answered without touching segment values.
    pub const STORE_VALUE_READS: &str = "store.value_reads";
    /// Counter: bytes appended to the store.
    pub const STORE_APPEND_BYTES: &str = "store.append_bytes";
    /// Counter: bytes written to export bundles.
    pub const STORE_EXPORT_BYTES: &str = "store.export_bytes";
    /// Counter: bytes read from import bundles.
    pub const STORE_IMPORT_BYTES: &str = "store.import_bytes";

    /// Counter: epoch rolls of a served store — a writer publish was
    /// detected and a fresh snapshot + catalog swapped in.
    pub const STORE_EPOCH_ROLLS: &str = "store.epoch_rolls";

    /// Span: one `sweep serve` connection, accept to close.
    pub const SERVE_CONNECTION: &str = "serve.connection";
    /// Span: answering one `/query` request (the span's duration histogram
    /// is the service's query latency distribution).
    pub const SERVE_QUERY: &str = "serve.query";
    /// Counter: connections the server dropped because the client hung up
    /// (or otherwise broke the socket) mid-exchange.  Never fatal.
    pub const SERVE_CLIENT_DISCONNECTS: &str = "serve.client_disconnects";
    /// Counter: requests answered, any endpoint or status.
    pub const SERVE_REQUESTS: &str = "serve.requests";

    /// Span: validating one shard stream against its key schedule.
    pub const MERGE_VALIDATE_SHARD: &str = "merge.validate_shard";
    /// Span: validating a manifest's grid against the local binary.
    pub const MANIFEST_VALIDATE: &str = "manifest.validate";

    /// Event: one [`logline!`](crate::logline) text line.
    pub const LOG: &str = "log";
}

const EVENTS: u8 = 1;
const METRICS: u8 = 2;

/// Which sinks are attached.  One relaxed load of this byte is the entire
/// disabled-path cost of every macro.
static STATE: AtomicU8 = AtomicU8::new(0);

/// The process-wide time origin: first enablement.  Event timestamps are
/// nanoseconds since this instant, so they are comparable within a process
/// (and explicitly *not* across processes — shard traces carry a tag
/// instead).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Refills of the trace replay batch buffer — hot enough (once per 64
/// records, inside the per-cycle machine loop's feeder) that it bypasses
/// the registry's locked map for one relaxed atomic.  Folded into
/// snapshots as [`names::TRACE_REFILLS`].
static HOT_TRACE_REFILLS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Whether the event recorder is attached.
#[inline]
#[must_use]
pub fn events_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & EVENTS != 0
}

/// Whether the metrics registry is attached.
#[inline]
#[must_use]
pub fn metrics_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & METRICS != 0
}

/// Whether any sink is attached (spans record under either).
#[inline]
#[must_use]
pub fn enabled() -> bool {
    STATE.load(Ordering::Relaxed) != 0
}

/// Attaches the event recorder (spans and events start being captured).
pub fn enable_events() {
    epoch();
    STATE.fetch_or(EVENTS, Ordering::Relaxed);
}

/// Attaches the metrics registry (counters and histograms start counting).
pub fn enable_metrics() {
    epoch();
    STATE.fetch_or(METRICS, Ordering::Relaxed);
}

/// Detaches every sink; macros go back to near-no-ops.  Already-recorded
/// events and metrics stay readable until drained or reset.
pub fn disable_all() {
    STATE.store(0, Ordering::Relaxed);
}

/// Counts one trace replay buffer refill (see [`names::TRACE_REFILLS`]).
///
/// This is the one instrumentation site inside the simulator's hot loop,
/// so it takes the dedicated-atomic fast path instead of [`counter!`]'s
/// locked map: disabled it is a relaxed load, enabled a relaxed
/// `fetch_add`.
#[inline]
pub fn count_trace_refill() {
    if metrics_enabled() {
        HOT_TRACE_REFILLS.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn hot_trace_refills() -> u64 {
    HOT_TRACE_REFILLS.load(Ordering::Relaxed)
}

pub(crate) fn reset_hot_counters() {
    HOT_TRACE_REFILLS.store(0, Ordering::Relaxed);
}

/// Prints `text` to stderr (exactly as `eprintln!` would) and, when the
/// event recorder is attached, also records it as a `log` event — the
/// implementation behind [`logline!`].
#[allow(clippy::print_stderr)]
pub fn log_text(text: &str) {
    // acmp-lint: allow(raw-stderr) -- this IS the logline! implementation
    eprintln!("{text}");
    if events_enabled() {
        recorder::emit_log(text);
    }
}

/// A wall-clock stopwatch for CLI progress reporting.
///
/// The one sanctioned way to measure elapsed wall time outside `bench`:
/// the clock read is concentrated here in `acmp-obs` (which already owns
/// the process [`epoch`]) so the deterministic simulation and storage
/// crates stay free of ambient-time calls — the `nondeterminism` lint
/// rule enforces exactly that.  Measured durations are *reported*, never
/// fed back into simulated state.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Opens a timed span: records an event carrying the fields plus the
/// measured duration when the returned guard drops, and a duration
/// histogram under the span's name.
///
/// Bind the guard to a named variable (`let _span = span!(…)`), not `_` —
/// `_` drops immediately and times nothing.  Field expressions are only
/// evaluated when a sink is attached.
///
/// ```
/// let mut _span = acmp_obs::span!("store.append", bytes = 128u64);
/// // … timed work …
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::SpanGuard::begin($name, ::std::vec::Vec::new())
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::begin(
                $name,
                ::std::vec![$((stringify!($key), $crate::FieldValue::from($value))),+],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Records an instant (un-timed) event with key=value fields.  Field
/// expressions are only evaluated when the event recorder is attached.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::events_enabled() {
            $crate::recorder::emit_event(
                $name,
                ::std::vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}

/// Adds `$delta` to the named counter when the metrics registry is
/// attached; otherwise one relaxed load and a not-taken branch.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        if $crate::metrics_enabled() {
            $crate::registry().counter_add($name, $delta);
        }
    };
}

/// Records `$value` into the named histogram when the metrics registry is
/// attached; otherwise one relaxed load and a not-taken branch.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        if $crate::metrics_enabled() {
            $crate::registry().histogram_record($name, $value);
        }
    };
}

/// The structured logger: formats like `eprintln!`, prints the identical
/// bytes to stderr, and records the line as a `log` event when tracing is
/// enabled.  Stderr output is byte-compatible with the `eprintln!` calls
/// it replaces.
#[macro_export]
macro_rules! logline {
    ($($arg:tt)*) => {
        $crate::log_text(&::std::format!($($arg)*))
    };
}

/// Test support: drains all recorded state and detaches every sink, so a
/// test binary that exercises the global recorder can hand it back clean.
pub fn reset_for_tests() {
    disable_all();
    let _ = drain_events();
    registry().reset();
}
