//! `sweep trace report` — renders a validated trace (plus an optional
//! metrics snapshot) into the three tables an operator actually wants:
//! where the time went per phase, which cells were slowest, and how well
//! the caches worked.

use crate::metrics::MetricsSnapshot;
use crate::names;
use serde::Value;
use std::collections::BTreeMap;

fn field<'a>(event: &'a Value, key: &str) -> Option<&'a Value> {
    event
        .as_object()
        .and_then(|f| serde::get_field(f, key).ok())
}

fn field_str<'a>(event: &'a Value, key: &str) -> Option<&'a str> {
    field(event, key).and_then(Value::as_str)
}

fn field_u64(event: &Value, key: &str) -> Option<u64> {
    match field(event, key) {
        Some(Value::UInt(n)) => Some(*n),
        _ => None,
    }
}

fn sub_field_str<'a>(event: &'a Value, key: &str) -> Option<&'a str> {
    field(event, "fields").and_then(|f| {
        f.as_object()
            .and_then(|fields| serde::get_field(fields, key).ok())
            .and_then(Value::as_str)
    })
}

#[derive(Default)]
struct PhaseAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

/// Renders the report over already-validated trace event objects (see
/// [`read_trace_values`](crate::read_trace_values)); `metrics`, when
/// given, supplies the authoritative cache counters — otherwise they are
/// reconstructed by counting the trace's own cell spans.  `top` bounds the
/// slowest-cells table.
#[must_use]
pub fn render_report(events: &[Value], metrics: Option<&MetricsSnapshot>, top: usize) -> String {
    let mut out = String::new();
    let spans: Vec<&Value> = events
        .iter()
        .filter(|e| field_str(e, "kind") == Some("span"))
        .collect();
    let logs = events
        .iter()
        .filter(|e| field_str(e, "kind") == Some("log"))
        .count();
    out.push_str(&format!(
        "trace: {} events ({} spans, {} log lines)\n",
        events.len(),
        spans.len(),
        logs
    ));

    // Per-phase cost breakdown, heaviest first.
    let mut phases: BTreeMap<&str, PhaseAgg> = BTreeMap::new();
    for span in &spans {
        let Some(name) = field_str(span, "name") else {
            continue;
        };
        let dur = field_u64(span, "dur_ns").unwrap_or(0);
        let agg = phases.entry(name).or_default();
        agg.count += 1;
        agg.total_ns += dur;
        agg.max_ns = agg.max_ns.max(dur);
    }
    let mut ordered: Vec<(&str, PhaseAgg)> = phases.into_iter().collect();
    ordered.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    out.push_str("\nper-phase cost:\n");
    out.push_str(&format!(
        "  {:<34} {:>7} {:>12} {:>12} {:>12}\n",
        "span", "count", "total ms", "mean us", "max us"
    ));
    for (name, agg) in &ordered {
        out.push_str(&format!(
            "  {:<34} {:>7} {:>12.3} {:>12.1} {:>12.1}\n",
            name,
            agg.count,
            agg.total_ns as f64 / 1e6,
            agg.total_ns as f64 / 1e3 / agg.count.max(1) as f64,
            agg.max_ns as f64 / 1e3,
        ));
    }

    // Slowest cells: every simulate_cell outcome is a per-cell span.
    let mut cells: Vec<&&Value> = spans
        .iter()
        .filter(|s| {
            field_str(s, "name").is_some_and(|n| n.starts_with(names::SIMULATE_CELL_PREFIX))
        })
        .collect();
    cells.sort_by_key(|s| std::cmp::Reverse(field_u64(s, "dur_ns").unwrap_or(0)));
    out.push_str(&format!("\nslowest cells (top {top}):\n"));
    if cells.is_empty() {
        out.push_str("  (no cell spans in this trace)\n");
    } else {
        out.push_str(&format!(
            "  {:>10} {:<12} {:<24} {:<12} {:<8} key\n",
            "ms", "benchmark", "design", "outcome", "shard"
        ));
        for span in cells.iter().take(top) {
            let outcome = field_str(span, "name")
                .and_then(|n| n.strip_prefix(names::SIMULATE_CELL_PREFIX))
                .unwrap_or("?");
            let key = sub_field_str(span, "key").unwrap_or("?");
            out.push_str(&format!(
                "  {:>10.3} {:<12} {:<24} {:<12} {:<8} {}\n",
                field_u64(span, "dur_ns").unwrap_or(0) as f64 / 1e6,
                sub_field_str(span, "benchmark").unwrap_or("?"),
                sub_field_str(span, "design").unwrap_or("?"),
                outcome,
                field_str(span, "shard").unwrap_or("-"),
                &key[..key.len().min(16)],
            ));
        }
    }

    // Cache efficiency: the metrics snapshot is authoritative when
    // supplied; a bare trace still yields the counts from its own spans.
    let count_spans = |name: &str| -> u64 {
        spans
            .iter()
            .filter(|s| field_str(s, "name") == Some(name))
            .count() as u64
    };
    let (simulated, memory, disk, gens, trace_disk) = match metrics {
        Some(m) => (
            m.counter(names::ENGINE_SIMULATED),
            m.counter(names::ENGINE_MEMORY_HITS),
            m.counter(names::ENGINE_DISK_HITS),
            m.counter(names::ENGINE_TRACE_GENERATED),
            m.counter(names::ENGINE_TRACE_DISK_HITS),
        ),
        None => (
            count_spans(names::SIMULATE_CELL_SIMULATE),
            count_spans(names::SIMULATE_CELL_MEMORY_HIT),
            count_spans(names::SIMULATE_CELL_DISK_HIT),
            count_spans(names::TRACE_LOAD_GENERATE),
            count_spans(names::TRACE_LOAD_DISK_HIT),
        ),
    };
    let cells_total = simulated + memory + disk;
    let hit_rate = if cells_total == 0 {
        0.0
    } else {
        100.0 * (memory + disk) as f64 / cells_total as f64
    };
    out.push_str("\ncache efficiency:\n");
    out.push_str(&format!(
        "  cells {cells_total}: simulated {simulated}, memory-hits {memory}, disk-hits {disk} (hit rate {hit_rate:.1}%)\n"
    ));
    out.push_str(&format!(
        "  traces: generated {gens}, disk-hits {trace_disk}\n"
    ));
    if let Some(m) = metrics {
        let refills = m.counter(names::TRACE_REFILLS);
        if refills > 0 {
            out.push_str(&format!("  trace replay refills: {refills}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Event, EventKind, FieldValue};
    use crate::trace::event_to_value;

    fn cell_span(name: &'static str, benchmark: &str, design: &str, dur_ns: u64) -> Value {
        event_to_value(&Event {
            t_ns: 1,
            thread: 0,
            seq: 0,
            kind: EventKind::Span,
            name,
            dur_ns: Some(dur_ns),
            fields: vec![
                ("benchmark", FieldValue::Str(benchmark.to_string())),
                ("design", FieldValue::Str(design.to_string())),
                ("key", FieldValue::Str("abcdef0123456789abcdef".to_string())),
            ],
        })
    }

    #[test]
    fn report_names_phases_slowest_cells_and_cache_rates() {
        let events = vec![
            cell_span(names::SIMULATE_CELL_SIMULATE, "cg", "baseline", 5_000_000),
            cell_span(names::SIMULATE_CELL_SIMULATE, "lu", "baseline", 9_000_000),
            cell_span(names::SIMULATE_CELL_MEMORY_HIT, "cg", "baseline", 1_000),
            cell_span(names::SIMULATE_CELL_DISK_HIT, "is", "proposed", 40_000),
        ];
        let report = render_report(&events, None, 2);
        assert!(report.contains("per-phase cost:"), "{report}");
        assert!(report.contains(names::SIMULATE_CELL_SIMULATE), "{report}");
        assert!(report.contains("slowest cells (top 2):"), "{report}");
        // The slowest cell leads the table.
        let slow = report.split("slowest cells").nth(1).unwrap();
        let first_row = slow.lines().nth(2).unwrap();
        assert!(first_row.contains("lu"), "{report}");
        assert!(
            report.contains("simulated 2, memory-hits 1, disk-hits 1"),
            "{report}"
        );
        assert!(report.contains("hit rate 50.0%"), "{report}");
    }

    #[test]
    fn metrics_snapshot_overrides_span_counting() {
        let mut m = MetricsSnapshot::default();
        m.counters.insert(names::ENGINE_SIMULATED.to_string(), 6);
        m.counters.insert(names::TRACE_REFILLS.to_string(), 123);
        let report = render_report(&[], Some(&m), 5);
        assert!(report.contains("simulated 6"), "{report}");
        assert!(report.contains("trace replay refills: 123"), "{report}");
        assert!(report.contains("(no cell spans in this trace)"), "{report}");
    }
}
