//! The aggregated metrics registry and its versioned JSON schema.
//!
//! Counters are plain named `u64`s; histograms are log₂-bucketed
//! (count/sum/min/max plus 65 buckets: bucket 0 holds the value 0, bucket
//! *k* the values in `[2^(k-1), 2^k)`).  Buckets are serialised as sparse
//! `[index, count]` pairs precisely so snapshots from different processes
//! — the shard children of one coordinator — can be *merged* without
//! losing the quantile structure; the derived `mean`/`p50`/`p90`/`p99`
//! fields are recomputed from the buckets after every merge.
//!
//! The JSON document is versioned ([`METRICS_SCHEMA`]) and pinned by a
//! committed golden fixture, so downstream consumers (`sweep serve`, the
//! planned elastic coordinator, CI validators) can parse it without churn.
//! [`MetricsSnapshot::from_value`] is a *strict* validator: unknown keys,
//! missing fields, malformed buckets and derived fields that disagree with
//! the buckets are all errors, which is what lets `sweep trace report`
//! double as the schema check in CI.

use parking_lot::Mutex;
use serde::Value;
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// The metrics document's schema identifier.
pub const METRICS_SCHEMA: &str = "acmp-obs-metrics/v1";

/// Number of histogram buckets: the zero bucket plus one per power of two.
const NUM_BUCKETS: usize = 65;

/// The value bucket `index` covers up to (inclusive).
fn bucket_upper(index: u32) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

/// The bucket `value` lands in.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

#[derive(Debug)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; NUM_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }
}

/// The process-wide metrics registry behind [`counter!`](crate::counter)
/// and [`histogram!`](crate::histogram).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<HashMap<&'static str, u64>>,
    histograms: Mutex<HashMap<&'static str, Histogram>>,
}

impl Registry {
    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        *self.counters.lock().entry(name).or_insert(0) += delta;
    }

    /// Records one `value` into the named histogram.
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        self.histograms
            .lock()
            .entry(name)
            .or_insert_with(Histogram::new)
            .record(value);
    }

    /// An immutable snapshot of everything recorded so far, including the
    /// hot-path counters that bypass the locked maps.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .lock()
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect();
        let refills = crate::hot_trace_refills();
        if refills > 0 {
            *counters
                .entry(crate::names::TRACE_REFILLS.to_string())
                .or_insert(0) += refills;
        }
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(&k, h)| (k.to_string(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Clears every counter and histogram (test support).
    pub fn reset(&self) {
        self.counters.lock().clear();
        self.histograms.lock().clear();
        crate::reset_hot_counters();
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// One histogram, frozen: totals plus sparse log₂ buckets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// `(bucket index, count)` pairs, ascending, zero counts omitted.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Records `value` (fixture-building and merge support; live recording
    /// goes through the registry).
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let index = bucket_index(value) as u32;
        match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (index, 1)),
        }
    }

    /// Arithmetic mean of the recorded values.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (0 < q ≤ 1): the upper bound of the bucket
    /// holding the ⌈q·count⌉-th value, capped at the observed maximum.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(index, count) in &self.buckets {
            cumulative += count;
            if cumulative >= target {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`, summing buckets; derived quantities stay
    /// derivable because the buckets merge losslessly.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for &(index, count) in &other.buckets {
            match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += count,
                Err(pos) => self.buckets.insert(pos, (index, count)),
            }
        }
    }

    fn to_value(&self) -> Value {
        let buckets = self
            .buckets
            .iter()
            .map(|&(i, c)| Value::Array(vec![Value::UInt(u64::from(i)), Value::UInt(c)]))
            .collect();
        Value::Object(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("sum".to_string(), Value::UInt(self.sum)),
            ("min".to_string(), Value::UInt(self.min)),
            ("max".to_string(), Value::UInt(self.max)),
            ("mean".to_string(), Value::Float(self.mean())),
            ("p50".to_string(), Value::UInt(self.quantile(0.50))),
            ("p90".to_string(), Value::UInt(self.quantile(0.90))),
            ("p99".to_string(), Value::UInt(self.quantile(0.99))),
            ("buckets".to_string(), Value::Array(buckets)),
        ])
    }

    fn from_value(name: &str, value: &Value) -> Result<Self, String> {
        let fields = value
            .as_object()
            .ok_or_else(|| format!("histogram `{name}` is not an object"))?;
        const KEYS: [&str; 9] = [
            "count", "sum", "min", "max", "mean", "p50", "p90", "p99", "buckets",
        ];
        for (key, _) in fields {
            if !KEYS.contains(&key.as_str()) {
                return Err(format!("histogram `{name}` has unknown field `{key}`"));
            }
        }
        let uint = |key: &str| -> Result<u64, String> {
            match serde::get_field(fields, key) {
                Ok(Value::UInt(n)) => Ok(*n),
                Ok(_) => Err(format!("histogram `{name}` field `{key}` is not a uint")),
                Err(_) => Err(format!("histogram `{name}` is missing field `{key}`")),
            }
        };
        let count = uint("count")?;
        let sum = uint("sum")?;
        let min = uint("min")?;
        let max = uint("max")?;
        if count == 0 {
            return Err(format!("histogram `{name}` has zero count"));
        }
        if min > max {
            return Err(format!("histogram `{name}` has min > max"));
        }
        let Ok(Value::Array(raw)) = serde::get_field(fields, "buckets") else {
            return Err(format!("histogram `{name}` is missing a buckets array"));
        };
        let mut buckets: Vec<(u32, u64)> = Vec::with_capacity(raw.len());
        let mut total = 0u64;
        for item in raw {
            let Value::Array(pair) = item else {
                return Err(format!("histogram `{name}` bucket is not a pair"));
            };
            let [Value::UInt(index), Value::UInt(bucket_count)] = pair.as_slice() else {
                return Err(format!("histogram `{name}` bucket is not [index, count]"));
            };
            if *index >= NUM_BUCKETS as u64 {
                return Err(format!(
                    "histogram `{name}` bucket index {index} out of range"
                ));
            }
            if *bucket_count == 0 {
                return Err(format!("histogram `{name}` carries an empty bucket"));
            }
            if let Some(&(last, _)) = buckets.last() {
                if u64::from(last) >= *index {
                    return Err(format!("histogram `{name}` buckets are not ascending"));
                }
            }
            buckets.push((*index as u32, *bucket_count));
            total += *bucket_count;
        }
        if total != count {
            return Err(format!(
                "histogram `{name}`: buckets sum to {total}, count says {count}"
            ));
        }
        let snapshot = HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        };
        // The derived fields are recomputable; a document whose spellings
        // disagree with its own buckets was hand-edited or corrupted.
        for (key, want) in [
            ("p50", snapshot.quantile(0.50)),
            ("p90", snapshot.quantile(0.90)),
            ("p99", snapshot.quantile(0.99)),
        ] {
            if uint(key)? != want {
                return Err(format!(
                    "histogram `{name}` field `{key}` disagrees with its buckets"
                ));
            }
        }
        match serde::get_field(fields, "mean") {
            Ok(Value::Float(x)) if *x == snapshot.mean() => {}
            Ok(Value::UInt(n)) if *n as f64 == snapshot.mean() => {}
            _ => {
                return Err(format!(
                    "histogram `{name}` field `mean` disagrees with sum/count"
                ))
            }
        }
        Ok(snapshot)
    }
}

/// A frozen, mergeable view of the whole registry — the payload of
/// `--metrics-out` and of the `metrics` block in `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter name → total.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → frozen histogram.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The named counter's total (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Folds `other` into `self`: counters sum, histograms merge bucketwise.
    /// This is how the shard coordinator combines its children's snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }

    /// The versioned JSON document (schema, counters, histograms — names
    /// sorted, so two identical snapshots print byte-identically).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::UInt(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_value()))
            .collect();
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::String(METRICS_SCHEMA.to_string()),
            ),
            ("counters".to_string(), Value::Object(counters)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }

    /// Strictly validates and rebuilds a snapshot from its JSON document.
    ///
    /// # Errors
    ///
    /// Names the first violation: wrong or missing schema tag, unknown
    /// keys, non-integer counters, malformed histograms, or derived fields
    /// that disagree with their buckets.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let fields = value
            .as_object()
            .ok_or_else(|| "metrics document is not an object".to_string())?;
        for (key, _) in fields {
            if !matches!(key.as_str(), "schema" | "counters" | "histograms") {
                return Err(format!("metrics document has unknown field `{key}`"));
            }
        }
        match serde::get_field(fields, "schema") {
            Ok(Value::String(s)) if s == METRICS_SCHEMA => {}
            Ok(Value::String(s)) => {
                return Err(format!(
                    "unsupported metrics schema `{s}` (want `{METRICS_SCHEMA}`)"
                ))
            }
            _ => return Err("metrics document is missing its schema tag".to_string()),
        }
        let counters_value = serde::get_field(fields, "counters")
            .map_err(|_| "metrics document is missing `counters`".to_string())?;
        let Some(counter_fields) = counters_value.as_object() else {
            return Err("`counters` is not an object".to_string());
        };
        let mut counters = BTreeMap::new();
        for (name, value) in counter_fields {
            let Value::UInt(n) = value else {
                return Err(format!("counter `{name}` is not a uint"));
            };
            if counters.insert(name.clone(), *n).is_some() {
                return Err(format!("counter `{name}` appears twice"));
            }
        }
        let histograms_value = serde::get_field(fields, "histograms")
            .map_err(|_| "metrics document is missing `histograms`".to_string())?;
        let Some(histogram_fields) = histograms_value.as_object() else {
            return Err("`histograms` is not an object".to_string());
        };
        let mut histograms = BTreeMap::new();
        for (name, value) in histogram_fields {
            let snapshot = HistogramSnapshot::from_value(name, value)?;
            if histograms.insert(name.clone(), snapshot).is_some() {
                return Err(format!("histogram `{name}` appears twice"));
            }
        }
        Ok(MetricsSnapshot {
            counters,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_is_a_partition() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value's bucket upper bound is >= the value, and the
        // previous bucket's upper bound is < it.
        for value in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
            let index = bucket_index(value) as u32;
            assert!(bucket_upper(index) >= value, "{value}");
            if index > 0 {
                assert!(bucket_upper(index - 1) < value, "{value}");
            }
        }
    }

    #[test]
    fn snapshot_quantiles_track_recorded_values() {
        let mut h = HistogramSnapshot::default();
        for value in [1u64, 2, 3, 4, 100, 1000] {
            h.record(value);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1110);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert!(h.quantile(0.5) >= 3 && h.quantile(0.5) <= 7);
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.mean() > 100.0);
    }

    #[test]
    fn merge_is_lossless_over_buckets() {
        let mut a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        let mut whole = HistogramSnapshot::default();
        for value in [1u64, 5, 9] {
            a.record(value);
            whole.record(value);
        }
        for value in [2u64, 700] {
            b.record(value);
            whole.record(value);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merging halves must equal recording the whole");
    }

    #[test]
    fn snapshot_document_round_trips_strictly() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.insert("engine.simulated".to_string(), 6);
        let mut h = HistogramSnapshot::default();
        for value in [10u64, 20, 40_000] {
            h.record(value);
        }
        snapshot
            .histograms
            .insert("engine.simulate_cell.simulate".to_string(), h);
        let text = snapshot.to_value().to_string();
        let parsed = MetricsSnapshot::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed, snapshot);
        assert_eq!(parsed.to_value().to_string(), text, "stable bytes");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let good = {
            let mut s = MetricsSnapshot::default();
            s.counters.insert("c".to_string(), 1);
            s.to_value().to_string()
        };
        for (label, text) in [
            ("wrong schema", good.replace("v1", "v999")),
            (
                "missing schema",
                good.replace("\"schema\":\"acmp-obs-metrics/v1\",", ""),
            ),
            (
                "extra key",
                good.replace("\"counters\"", "\"surprise\":1,\"counters\""),
            ),
            ("bad counter", good.replace("\"c\":1", "\"c\":\"one\"")),
        ] {
            let value: Value = serde_json::from_str(&text).unwrap();
            assert!(
                MetricsSnapshot::from_value(&value).is_err(),
                "{label} must be rejected: {text}"
            );
        }
    }

    #[test]
    fn validator_rejects_buckets_that_disagree_with_count() {
        let mut h = HistogramSnapshot::default();
        h.record(3);
        let mut s = MetricsSnapshot::default();
        s.histograms.insert("h".to_string(), h);
        let text = s
            .to_value()
            .to_string()
            .replace("\"count\":1", "\"count\":2");
        let value: Value = serde_json::from_str(&text).unwrap();
        assert!(MetricsSnapshot::from_value(&value).is_err());
    }

    #[test]
    fn merged_snapshots_sum_counters() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("engine.simulated".to_string(), 2);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("engine.simulated".to_string(), 4);
        b.counters.insert("engine.disk_hits".to_string(), 1);
        a.merge(&b);
        assert_eq!(a.counter("engine.simulated"), 6);
        assert_eq!(a.counter("engine.disk_hits"), 1);
        assert_eq!(a.counter("never.recorded"), 0);
    }
}
