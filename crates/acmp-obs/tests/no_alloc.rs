//! Disabled-mode overhead: the hot path must not allocate.
//!
//! This test binary installs a counting global allocator and never enables
//! any sink, so the default (disabled) state is what is measured.  The
//! check is counter-based, not timing-based, so it is stable on loaded CI
//! hosts.  It lives alone in this binary: a sibling test enabling a sink
//! would race the assertion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// Counted per thread: the test harness's own threads allocate at their
// leisure (channel wakeups, result reporting), and a process-wide counter
// would pick those up as flaky false positives.  `Cell<u64>` has no
// destructor, so the const-initialised TLS slot never allocates itself.
std::thread_local! {
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

struct CountingAllocator;

// SAFETY: delegates directly to `System`; the counter update cannot
// itself allocate (plain `Cell` arithmetic, `try_with` to survive TLS
// teardown).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_macros_allocate_nothing() {
    assert!(
        !acmp_obs::enabled(),
        "no sink may be attached in this binary"
    );
    // Warm anything lazily initialised outside the measured window.
    {
        let _span = acmp_obs::span!("warmup.span");
    }
    let before = thread_allocations();
    for i in 0..100_000u64 {
        let mut span = acmp_obs::span!("test.span", index = i, label = "cell");
        span.record_field("outcome", "skipped");
        acmp_obs::event!("test.event", index = i);
        acmp_obs::counter!("test.counter", 1);
        acmp_obs::histogram!("test.histogram", i);
        acmp_obs::count_trace_refill();
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "disabled-mode hot path performed {} allocations",
        after - before
    );
}
