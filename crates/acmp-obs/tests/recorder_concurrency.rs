//! Recorder integrity under concurrency.
//!
//! The recorder is process-global, so this file holds exactly one test
//! function: everything that must observe the global state runs inside it,
//! in a fixed order, with no sibling test racing the registry.

use acmp_obs::{drain_events, event, names, registry, EventKind};

const THREADS: u64 = 8;
const EVENTS_PER_THREAD: u64 = 1_000;

#[test]
fn concurrent_emit_loses_nothing_and_keeps_per_thread_order() {
    acmp_obs::reset_for_tests();
    acmp_obs::enable_events();
    acmp_obs::enable_metrics();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for k in 0..EVENTS_PER_THREAD {
                    event!("test.tick", t = t, k = k);
                    acmp_obs::counter!("test.ticks", 1);
                }
            });
        }
    });

    let events = drain_events();
    let ours: Vec<_> = events.iter().filter(|e| e.name == "test.tick").collect();
    assert_eq!(
        ours.len() as u64,
        THREADS * EVENTS_PER_THREAD,
        "no event may be lost under concurrent emit"
    );
    assert_eq!(
        registry().snapshot().counter("test.ticks"),
        THREADS * EVENTS_PER_THREAD
    );

    // Per-thread order: group by recorder thread id; within each thread
    // the sequence numbers must be gapless and the payload (`k`) must
    // appear in emission order.
    let mut per_thread: std::collections::BTreeMap<u32, Vec<(u64, u64)>> = Default::default();
    for e in &ours {
        assert_eq!(e.kind, EventKind::Instant);
        let k = e
            .fields
            .iter()
            .find_map(|(key, v)| match (key, v) {
                (&"k", acmp_obs::FieldValue::U64(n)) => Some(*n),
                _ => None,
            })
            .expect("every tick carries k");
        per_thread.entry(e.thread).or_default().push((e.seq, k));
    }
    assert_eq!(per_thread.len() as u64, THREADS);
    for (thread, mut entries) in per_thread {
        entries.sort_by_key(|&(seq, _)| seq);
        for (i, &(seq, k)) in entries.iter().enumerate() {
            assert_eq!(seq, i as u64, "thread {thread}: gapless sequence");
            assert_eq!(k, i as u64, "thread {thread}: per-thread emission order");
        }
    }

    // Drain must have emptied the recorder; spans recorded after a drain
    // are a fresh history.
    assert!(drain_events().iter().all(|e| e.name != "test.tick"));
    {
        let mut span = acmp_obs::span!("test.span", label = "after-drain");
        span.record_field("outcome", "ok");
    }
    let after = drain_events();
    let span = after
        .iter()
        .find(|e| e.name == "test.span")
        .expect("span recorded after drain");
    assert_eq!(span.kind, EventKind::Span);
    assert!(span.dur_ns.is_some(), "spans carry a measured duration");
    assert!(span
        .fields
        .iter()
        .any(|(k, v)| *k == "outcome" && *v == acmp_obs::FieldValue::Str("ok".to_string())));
    // The span also landed in its duration histogram.
    let snapshot = registry().snapshot();
    assert_eq!(snapshot.histograms["test.span"].count, 1);

    // `log` lines become events too.
    acmp_obs::logline!("test log line {}", 42);
    let logs = drain_events();
    assert!(logs
        .iter()
        .any(|e| e.name == names::LOG && e.kind == EventKind::Log));

    acmp_obs::reset_for_tests();
}
