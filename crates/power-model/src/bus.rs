//! Shared I-bus area and power model (Section VI-D of the paper).
//!
//! The bus is wired over logic, so its area is the area of its wires: the
//! number of wires (data width plus address lines) times the wire pitch
//! gives the physical width, and the paper estimates the length as the
//! number of connected cores times that physical width — hence the quadratic
//! dependence of area on line width.  Doubling the number of buses
//! quadruples the interconnect area (each bus still spans all cores and the
//! wiring channels do not share).  Power is proportional to area (the
//! power-to-area relation the paper takes from McPAT's NoC component), with
//! the dynamic share proportional to the number of transactions.

use crate::technology::TechnologyNode;
use serde::{Deserialize, Serialize};

/// Address wires added on top of the data wires.
const ADDRESS_WIRES: u64 = 40;
/// Total bus power per mm² of bus area, in mW/mm² (the power-to-area
/// coefficient lifted from the NoC component).
const POWER_PER_MM2_MW: f64 = 120.0;
/// Fraction of the bus power that is static at a reference utilisation; the
/// rest scales with transactions.
const STATIC_FRACTION: f64 = 0.6;
/// Transactions per second at which the dynamic share equals its reference
/// value (one transaction every 16 cycles at 2 GHz).
const REF_TRANSACTIONS_PER_S: f64 = 1.25e8;

/// Area/power model for the interconnect between a sharing group and its
/// I-cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusAreaModel {
    /// Data width of one bus in bytes (Table I: 32 B).
    pub width_bytes: u64,
    /// Number of cores connected to the bus.
    pub num_cores: usize,
    /// Number of buses (1 = single, 2 = double).
    pub num_buses: usize,
    /// Technology assumptions.
    pub technology: TechnologyNode,
}

impl BusAreaModel {
    /// Creates a bus model.
    ///
    /// # Panics
    ///
    /// Panics if the width, core count or bus count is zero.
    pub fn new(width_bytes: u64, num_cores: usize, num_buses: usize) -> Self {
        assert!(width_bytes > 0, "bus width must be positive");
        assert!(num_cores > 0, "a bus connects at least one core");
        assert!(num_buses > 0, "need at least one bus");
        BusAreaModel {
            width_bytes,
            num_cores,
            num_buses,
            technology: TechnologyNode::node_45nm(),
        }
    }

    /// Number of wires of one bus.
    pub fn wires(&self) -> u64 {
        self.width_bytes * 8 + ADDRESS_WIRES
    }

    /// Physical width of one bus in millimetres (wires × pitch).
    pub fn physical_width_mm(&self) -> f64 {
        self.wires() as f64 * self.technology.wire_pitch_nm * 1e-6
    }

    /// Length of one bus in millimetres (number of cores × physical width,
    /// as in the paper's estimate).
    pub fn length_mm(&self) -> f64 {
        self.num_cores as f64 * self.physical_width_mm()
    }

    /// Total interconnect area in mm².  With `n` buses the area is `n²`
    /// times the single-bus area.
    pub fn area_mm2(&self) -> f64 {
        let single = self.physical_width_mm() * self.length_mm();
        single * (self.num_buses * self.num_buses) as f64
    }

    /// Total (static + dynamic at reference utilisation) power in mW.
    pub fn total_power_mw(&self) -> f64 {
        self.area_mm2() * POWER_PER_MM2_MW
    }

    /// Static power in mW.
    pub fn static_power_mw(&self) -> f64 {
        self.total_power_mw() * STATIC_FRACTION
    }

    /// Dynamic energy per bus transaction in pJ, derived from the
    /// power-to-area relation: the dynamic share of the power at the
    /// reference transaction rate, divided by that rate.
    pub fn energy_per_transaction_pj(&self) -> f64 {
        let dynamic_mw = self.total_power_mw() * (1.0 - STATIC_FRACTION);
        // mW / (transactions/s) = nJ per transaction; convert to pJ.
        dynamic_mw / REF_TRANSACTIONS_PER_S * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheCostModel;

    #[test]
    fn area_is_quadratic_in_width() {
        let narrow = BusAreaModel::new(16, 8, 1);
        let wide = BusAreaModel::new(32, 8, 1);
        let ratio = wide.area_mm2() / narrow.area_mm2();
        // Wires go from 168 to 296: the area ratio is the square of the wire
        // ratio (both the width and the length scale with it).
        let expected = (296.0f64 / 168.0).powi(2);
        assert!((ratio - expected).abs() < 1e-6);
    }

    #[test]
    fn doubling_buses_quadruples_area() {
        let single = BusAreaModel::new(32, 8, 1);
        let double = BusAreaModel::new(32, 8, 2);
        assert!((double.area_mm2() - 4.0 * single.area_mm2()).abs() < 1e-9);
    }

    #[test]
    fn area_is_linear_in_core_count() {
        let four = BusAreaModel::new(32, 4, 1);
        let eight = BusAreaModel::new(32, 8, 1);
        assert!((eight.area_mm2() - 2.0 * four.area_mm2()).abs() < 1e-9);
    }

    #[test]
    fn double_bus_is_a_sizeable_fraction_of_a_16k_cache() {
        // The paper estimates the double I-bus at roughly 45 % of a 16 KB
        // I-cache; our wire model lands in the same region (tens of percent,
        // clearly smaller than the cache but not negligible).
        let bus = BusAreaModel::new(32, 8, 2).area_mm2();
        let cache = CacheCostModel::new(16 * 1024).area_mm2();
        let ratio = bus / cache;
        assert!(
            ratio > 0.2 && ratio < 0.9,
            "double-bus/16KB-cache area ratio should be a substantial fraction, got {ratio:.2}"
        );
    }

    #[test]
    fn power_follows_area() {
        let a = BusAreaModel::new(32, 8, 1);
        let b = BusAreaModel::new(32, 8, 2);
        assert!((b.total_power_mw() / a.total_power_mw() - 4.0).abs() < 1e-9);
        assert!(a.static_power_mw() < a.total_power_mw());
        assert!(a.energy_per_transaction_pj() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bus")]
    fn zero_buses_rejected() {
        BusAreaModel::new(32, 8, 0);
    }
}
