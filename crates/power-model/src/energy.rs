//! Energy accounting.

use serde::{Deserialize, Serialize};

/// Energy consumed by a worker cluster over one benchmark run, in
/// millijoules, broken down by component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Leakage of cores, caches, line buffers and buses over the execution
    /// time.
    pub static_mj: f64,
    /// Dynamic energy of the core pipelines (per committed instruction).
    pub core_dynamic_mj: f64,
    /// Dynamic energy of I-cache reads.
    pub icache_dynamic_mj: f64,
    /// Dynamic energy of line-buffer reads.
    pub line_buffer_dynamic_mj: f64,
    /// Dynamic energy of bus transactions.
    pub bus_dynamic_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.static_mj
            + self.core_dynamic_mj
            + self.icache_dynamic_mj
            + self.line_buffer_dynamic_mj
            + self.bus_dynamic_mj
    }

    /// Fraction of the total that is leakage.
    pub fn static_fraction(&self) -> f64 {
        let t = self.total_mj();
        if t == 0.0 {
            0.0
        } else {
            self.static_mj / t
        }
    }
}

impl std::ops::Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            static_mj: self.static_mj + rhs.static_mj,
            core_dynamic_mj: self.core_dynamic_mj + rhs.core_dynamic_mj,
            icache_dynamic_mj: self.icache_dynamic_mj + rhs.icache_dynamic_mj,
            line_buffer_dynamic_mj: self.line_buffer_dynamic_mj + rhs.line_buffer_dynamic_mj,
            bus_dynamic_mj: self.bus_dynamic_mj + rhs.bus_dynamic_mj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_components() {
        let e = EnergyBreakdown {
            static_mj: 1.0,
            core_dynamic_mj: 2.0,
            icache_dynamic_mj: 0.5,
            line_buffer_dynamic_mj: 0.25,
            bus_dynamic_mj: 0.25,
        };
        assert!((e.total_mj() - 4.0).abs() < 1e-12);
        assert!((e.static_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let e = EnergyBreakdown::default();
        assert_eq!(e.total_mj(), 0.0);
        assert_eq!(e.static_fraction(), 0.0);
    }

    #[test]
    fn add_combines_componentwise() {
        let a = EnergyBreakdown {
            static_mj: 1.0,
            ..Default::default()
        };
        let b = EnergyBreakdown {
            bus_dynamic_mj: 2.0,
            ..Default::default()
        };
        let c = a + b;
        assert!((c.total_mj() - 3.0).abs() < 1e-12);
    }
}
