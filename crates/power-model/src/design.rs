//! Cluster-level area and energy of the evaluated design points.
//!
//! Following the paper's Section VI-D, the comparison covers the **worker
//! cluster only**: the eight lean cores, their I-caches (private or shared),
//! their line buffers, and the I-bus.  The master core, the LLC and the NoC
//! are excluded because they are identical in every design point.

use crate::bus::BusAreaModel;
use crate::cache::{CacheCostModel, LineBufferCost};
use crate::core::LeanCoreModel;
use crate::energy::EnergyBreakdown;
use crate::technology::TechnologyNode;
use serde::{Deserialize, Serialize};

/// How the worker I-caches are organised in a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcacheOrganisation {
    /// One private I-cache per worker core.
    Private {
        /// Capacity of each private I-cache in bytes.
        size_bytes: u64,
    },
    /// Groups of `cores_per_cache` workers share one I-cache.
    Shared {
        /// Capacity of each shared I-cache in bytes.
        size_bytes: u64,
        /// Workers per shared cache.
        cores_per_cache: usize,
        /// Buses per shared cache (1 = single, 2 = double).
        num_buses: usize,
    },
}

/// A worker-cluster design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterDesign {
    /// Number of lean worker cores (8 in the paper).
    pub num_workers: usize,
    /// Line buffers per core.
    pub line_buffers: usize,
    /// I-cache organisation.
    pub organisation: IcacheOrganisation,
}

/// Per-run activity counters fed into the energy model (taken from the
/// simulator's [`sim_acmp::SimResult`]-level statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClusterActivity {
    /// Execution time of the run in cycles.
    pub cycles: u64,
    /// Instructions committed by the worker cores.
    pub instructions: u64,
    /// Reads served by the worker I-caches.
    pub icache_accesses: u64,
    /// Line-buffer lookups made by the worker front-ends.
    pub line_buffer_accesses: u64,
    /// Transactions on the I-bus (zero for the private organisation).
    pub bus_transactions: u64,
}

/// Area breakdown of a cluster design in mm².
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterCost {
    /// Core area excluding I-caches.
    pub cores_mm2: f64,
    /// Total I-cache area.
    pub icaches_mm2: f64,
    /// Total line-buffer area.
    pub line_buffers_mm2: f64,
    /// I-bus area.
    pub bus_mm2: f64,
}

impl ClusterCost {
    /// Total cluster area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.cores_mm2 + self.icaches_mm2 + self.line_buffers_mm2 + self.bus_mm2
    }
}

impl ClusterDesign {
    /// The paper's baseline: eight workers with private 32 KB I-caches and
    /// four line buffers.
    pub fn baseline(num_workers: usize) -> Self {
        ClusterDesign {
            num_workers,
            line_buffers: 4,
            organisation: IcacheOrganisation::Private {
                size_bytes: 32 * 1024,
            },
        }
    }

    /// A cpc = `num_workers` shared design with the given cache size, line
    /// buffers and bus count.
    pub fn shared(
        num_workers: usize,
        size_bytes: u64,
        line_buffers: usize,
        num_buses: usize,
    ) -> Self {
        ClusterDesign {
            num_workers,
            line_buffers,
            organisation: IcacheOrganisation::Shared {
                size_bytes,
                cores_per_cache: num_workers,
                num_buses,
            },
        }
    }

    /// Number of I-caches in the cluster.
    pub fn num_icaches(&self) -> usize {
        match self.organisation {
            IcacheOrganisation::Private { .. } => self.num_workers,
            IcacheOrganisation::Shared {
                cores_per_cache, ..
            } => self.num_workers.div_ceil(cores_per_cache),
        }
    }

    fn icache_model(&self) -> CacheCostModel {
        let size = match self.organisation {
            IcacheOrganisation::Private { size_bytes } => size_bytes,
            IcacheOrganisation::Shared { size_bytes, .. } => size_bytes,
        };
        CacheCostModel::new(size)
    }

    fn bus_model(&self) -> Option<BusAreaModel> {
        match self.organisation {
            IcacheOrganisation::Private { .. } => None,
            IcacheOrganisation::Shared {
                cores_per_cache,
                num_buses,
                ..
            } => Some(BusAreaModel::new(32, cores_per_cache, num_buses)),
        }
    }

    /// Area breakdown of the cluster.
    pub fn area(&self) -> ClusterCost {
        let icache = self.icache_model();
        let num_groups = self.num_icaches();
        let bus_mm2 = self
            .bus_model()
            .map(|b| b.area_mm2() * (self.num_workers / b.num_cores.max(1)) as f64)
            .unwrap_or(0.0);
        ClusterCost {
            cores_mm2: LeanCoreModel::AREA_MM2 * self.num_workers as f64,
            icaches_mm2: icache.area_mm2() * num_groups as f64,
            line_buffers_mm2: LineBufferCost::AREA_MM2
                * (self.line_buffers * self.num_workers) as f64,
            bus_mm2,
        }
    }

    /// Total static power of the cluster in mW.
    pub fn static_power_mw(&self) -> f64 {
        let icache = self.icache_model();
        let bus = self.bus_model().map(|b| b.static_power_mw()).unwrap_or(0.0);
        LeanCoreModel::STATIC_MW * self.num_workers as f64
            + icache.static_power_mw() * self.num_icaches() as f64
            + LineBufferCost::STATIC_MW * (self.line_buffers * self.num_workers) as f64
            + bus
    }

    /// Energy consumed during a run with the given activity counters.
    pub fn energy(&self, activity: &ClusterActivity) -> EnergyBreakdown {
        let tech = TechnologyNode::node_45nm();
        let seconds = tech.cycles_to_seconds(activity.cycles);
        let icache = self.icache_model();
        let bus_pj = self
            .bus_model()
            .map(|b| b.energy_per_transaction_pj())
            .unwrap_or(0.0);

        // mW × s = mJ; pJ × count = pJ, converted to mJ via 1e-9.
        EnergyBreakdown {
            static_mj: self.static_power_mw() * seconds,
            core_dynamic_mj: activity.instructions as f64
                * LeanCoreModel::ENERGY_PER_INSTR_PJ
                * 1e-9,
            icache_dynamic_mj: activity.icache_accesses as f64 * icache.read_energy_pj() * 1e-9,
            line_buffer_dynamic_mj: activity.line_buffer_accesses as f64
                * LineBufferCost::READ_PJ
                * 1e-9,
            bus_dynamic_mj: activity.bus_transactions as f64 * bus_pj * 1e-9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity(cycles: u64) -> ClusterActivity {
        ClusterActivity {
            cycles,
            instructions: 8 * cycles * 8 / 10, // IPC 0.8 per worker
            icache_accesses: 8 * cycles / 30,
            line_buffer_accesses: 8 * cycles / 14,
            bus_transactions: 0,
        }
    }

    #[test]
    fn shared_16k_double_bus_saves_roughly_ten_percent_area() {
        let baseline = ClusterDesign::baseline(8).area().total_mm2();
        let proposed = ClusterDesign::shared(8, 16 * 1024, 4, 2).area().total_mm2();
        let savings = 1.0 - proposed / baseline;
        assert!(
            (0.08..=0.16).contains(&savings),
            "the paper reports ~11% area savings; model gives {:.1}%",
            savings * 100.0
        );
    }

    #[test]
    fn single_bus_design_saves_more_area_than_double_bus() {
        let single = ClusterDesign::shared(8, 16 * 1024, 4, 1).area().total_mm2();
        let double = ClusterDesign::shared(8, 16 * 1024, 4, 2).area().total_mm2();
        assert!(single < double);
    }

    #[test]
    fn more_line_buffers_cost_more_area() {
        let four = ClusterDesign::shared(8, 16 * 1024, 4, 2).area().total_mm2();
        let eight = ClusterDesign::shared(8, 16 * 1024, 8, 2).area().total_mm2();
        assert!(eight > four);
    }

    #[test]
    fn shared_design_has_lower_static_power() {
        let baseline = ClusterDesign::baseline(8).static_power_mw();
        let proposed = ClusterDesign::shared(8, 16 * 1024, 4, 2).static_power_mw();
        assert!(proposed < baseline);
    }

    #[test]
    fn energy_savings_in_the_paper_ballpark_at_equal_time() {
        // With identical execution time and activity, the shared design
        // saves energy mostly through I-cache leakage; the paper reports ~5%
        // for the double-bus design point.
        let act_private = activity(1_000_000);
        let mut act_shared = act_private;
        // The shared cache sees the same total accesses but they now ride
        // the bus.
        act_shared.bus_transactions = act_shared.icache_accesses;
        let baseline = ClusterDesign::baseline(8).energy(&act_private).total_mj();
        let proposed = ClusterDesign::shared(8, 16 * 1024, 4, 2)
            .energy(&act_shared)
            .total_mj();
        let savings = 1.0 - proposed / baseline;
        assert!(
            (0.01..=0.12).contains(&savings),
            "energy savings should be a few percent, got {:.1}%",
            savings * 100.0
        );
    }

    #[test]
    fn longer_execution_time_costs_more_energy() {
        let d = ClusterDesign::shared(8, 16 * 1024, 4, 1);
        let short = d.energy(&activity(1_000_000)).total_mj();
        let long = d.energy(&activity(1_100_000)).total_mj();
        assert!(long > short);
    }

    #[test]
    fn num_icaches_by_organisation() {
        assert_eq!(ClusterDesign::baseline(8).num_icaches(), 8);
        assert_eq!(ClusterDesign::shared(8, 16 * 1024, 4, 1).num_icaches(), 1);
        let grouped = ClusterDesign {
            num_workers: 8,
            line_buffers: 4,
            organisation: IcacheOrganisation::Shared {
                size_bytes: 32 * 1024,
                cores_per_cache: 4,
                num_buses: 1,
            },
        };
        assert_eq!(grouped.num_icaches(), 2);
    }

    #[test]
    fn cluster_cost_total_is_component_sum() {
        let c = ClusterDesign::baseline(8).area();
        let sum = c.cores_mm2 + c.icaches_mm2 + c.line_buffers_mm2 + c.bus_mm2;
        assert!((c.total_mm2() - sum).abs() < 1e-12);
        assert_eq!(c.bus_mm2, 0.0, "private organisation has no bus");
    }
}
