//! Lean-core (Cortex-A9-like) cost constants, excluding the I-cache.
//!
//! The I-cache is modelled separately (`cache` module) so that the private
//! and shared organisations can be compared; what remains here is the rest
//! of the core: pipeline, register files, L1 D-cache, TLBs.  The constants
//! are chosen so that a 32 KB I-cache represents ≈ 15 % of the complete
//! core's area and power, the anchor the paper quotes from McPAT for the
//! Cortex-A9.

use crate::cache::CacheCostModel;
use serde::{Deserialize, Serialize};

/// Cost model of one lean core without its L1 I-cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LeanCoreModel;

impl LeanCoreModel {
    /// Area of the core excluding the I-cache, in mm² at 45 nm.
    pub const AREA_MM2: f64 = 1.70;
    /// Static (leakage) power excluding the I-cache, in mW.
    pub const STATIC_MW: f64 = 170.0;
    /// Dynamic energy per committed instruction, in pJ (covers the back-end,
    /// D-cache and register files).
    pub const ENERGY_PER_INSTR_PJ: f64 = 160.0;

    /// Area of the complete core (including a private I-cache of
    /// `icache_bytes`).
    pub fn area_with_icache_mm2(icache_bytes: u64) -> f64 {
        Self::AREA_MM2 + CacheCostModel::new(icache_bytes).area_mm2()
    }

    /// Fraction of the complete core's area taken by a private I-cache of
    /// `icache_bytes`.
    pub fn icache_area_fraction(icache_bytes: u64) -> f64 {
        let icache = CacheCostModel::new(icache_bytes).area_mm2();
        icache / (Self::AREA_MM2 + icache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icache_is_about_15_percent_of_core_area() {
        let f = LeanCoreModel::icache_area_fraction(32 * 1024);
        assert!(
            (0.12..=0.18).contains(&f),
            "32KB I-cache should be ~15% of a lean core, got {:.1}%",
            f * 100.0
        );
    }

    #[test]
    fn icache_static_power_is_about_15_percent_of_core_static() {
        let icache = CacheCostModel::new(32 * 1024).static_power_mw();
        let f = icache / (LeanCoreModel::STATIC_MW + icache);
        assert!(
            (0.12..=0.18).contains(&f),
            "32KB I-cache should be ~15% of lean-core static power, got {:.1}%",
            f * 100.0
        );
    }

    #[test]
    fn complete_core_area_adds_the_icache() {
        let total = LeanCoreModel::area_with_icache_mm2(32 * 1024);
        assert!(total > LeanCoreModel::AREA_MM2);
        assert!((total - 2.0).abs() < 0.1, "a lean core is ~2 mm² at 45 nm");
    }
}
