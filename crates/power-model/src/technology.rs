//! Technology assumptions.

use serde::{Deserialize, Serialize};

/// Process / clock assumptions shared by every cost model.
///
/// The paper quotes a 45 nm wire pitch of 205 nm (from Lee et al., ISVLSI
/// 2013) and a lean-core clock in the 2 GHz range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyNode {
    /// Feature size in nanometres (informational).
    pub feature_nm: u32,
    /// Wire pitch in nanometres, used by the bus area model.
    pub wire_pitch_nm: f64,
    /// Core clock frequency in GHz, used to turn cycles into seconds.
    pub clock_ghz: f64,
}

impl TechnologyNode {
    /// The 45 nm node used throughout the paper's McPAT/CACTI projections.
    pub fn node_45nm() -> Self {
        TechnologyNode {
            feature_nm: 45,
            wire_pitch_nm: 205.0,
            clock_ghz: 2.0,
        }
    }

    /// Converts a cycle count into seconds at this node's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the pitch or clock is not positive.
    pub fn validate(&self) {
        assert!(self.wire_pitch_nm > 0.0, "wire pitch must be positive");
        assert!(self.clock_ghz > 0.0, "clock must be positive");
    }
}

impl Default for TechnologyNode {
    fn default() -> Self {
        TechnologyNode::node_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_45nm_matches_paper_constants() {
        let t = TechnologyNode::node_45nm();
        assert_eq!(t.feature_nm, 45);
        assert!((t.wire_pitch_nm - 205.0).abs() < 1e-9);
        t.validate();
    }

    #[test]
    fn cycle_conversion() {
        let t = TechnologyNode::node_45nm();
        assert!((t.cycles_to_seconds(2_000_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(t.cycles_to_seconds(0), 0.0);
    }

    #[test]
    fn default_is_45nm() {
        assert_eq!(TechnologyNode::default(), TechnologyNode::node_45nm());
    }
}
