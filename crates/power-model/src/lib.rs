//! McPAT/CACTI-style analytic area, power and energy model.
//!
//! The paper projects the area and energy of its design points with McPAT
//! and CACTI, using the ARM Cortex-A9 configuration as the lean-core
//! template (Section VI-D).  Neither tool is available here, so this crate
//! provides an analytic substitute calibrated to the relationships the paper
//! relies on:
//!
//! * a lean core spends **≈ 15 %** of its area and power on its 32 KB
//!   I-cache (quoted from McPAT for the Cortex-A9 and Niagara2);
//! * SRAM area and leakage scale roughly linearly with capacity, while the
//!   per-access (dynamic) energy scales with the square root of capacity
//!   (CACTI's usual trend for small caches);
//! * the I-bus area is wires × pitch × length, with the length proportional
//!   to the number of connected cores and the width to the line size, giving
//!   the quadratic dependence on width the paper cites from Kumar et al.;
//!   bus power is proportional to bus area, with the dynamic share
//!   proportional to the number of transactions (Section VI-D);
//! * a double bus costs **4×** the area of a single bus, and the paper
//!   estimates a double I-bus at ≈ 45 % of a 16 KB I-cache — the constants
//!   below are chosen to land on those two anchor points;
//! * energy = total power × execution time.
//!
//! The model works in *relative* units (mm² at 45 nm and milliwatts), which
//! is all Figure 12 needs: every reported number is normalised to the
//! private-I-cache baseline.

pub mod bus;
pub mod cache;
pub mod core;
pub mod design;
pub mod energy;
pub mod technology;

pub use bus::BusAreaModel;
pub use cache::{CacheCostModel, LineBufferCost};
pub use core::LeanCoreModel;
pub use design::{ClusterActivity, ClusterCost, ClusterDesign, IcacheOrganisation};
pub use energy::EnergyBreakdown;
pub use technology::TechnologyNode;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CacheCostModel>();
        assert_send_sync::<BusAreaModel>();
        assert_send_sync::<LeanCoreModel>();
        assert_send_sync::<ClusterDesign>();
    }
}
