//! CACTI-like cache cost model.

use serde::{Deserialize, Serialize};

/// Reference area of a 32 KB, 8-way I-cache in mm² at 45 nm, chosen so the
/// I-cache is ≈ 15 % of the lean core's area, as McPAT reports for the
/// Cortex-A9 (Section II-C of the paper).
const REF_AREA_32K_MM2: f64 = 0.30;
/// Reference leakage (static) power of the 32 KB I-cache in mW, ≈ 15 % of
/// the lean core's static power.
const REF_STATIC_32K_MW: f64 = 30.0;
/// Reference read energy of the 32 KB I-cache in pJ per access.
const REF_READ_32K_PJ: f64 = 180.0;
/// Area exponent: SRAM area scales slightly sub-linearly with capacity
/// (smaller arrays pay proportionally more for periphery).
const AREA_EXPONENT: f64 = 0.85;
/// Dynamic-energy exponent: read energy scales roughly with the square root
/// of capacity (shorter bit/word lines).
const ENERGY_EXPONENT: f64 = 0.5;

/// Area, leakage and per-access energy of one instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheCostModel {
    /// Capacity in bytes.
    pub size_bytes: u64,
}

impl CacheCostModel {
    /// Creates a cost model for a cache of `size_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the size is zero.
    pub fn new(size_bytes: u64) -> Self {
        assert!(size_bytes > 0, "cache size must be positive");
        CacheCostModel { size_bytes }
    }

    fn ratio(&self) -> f64 {
        self.size_bytes as f64 / (32.0 * 1024.0)
    }

    /// Silicon area in mm².
    pub fn area_mm2(&self) -> f64 {
        REF_AREA_32K_MM2 * self.ratio().powf(AREA_EXPONENT)
    }

    /// Leakage power in mW (scales linearly with capacity).
    pub fn static_power_mw(&self) -> f64 {
        REF_STATIC_32K_MW * self.ratio()
    }

    /// Energy per read access in pJ.
    pub fn read_energy_pj(&self) -> f64 {
        REF_READ_32K_PJ * self.ratio().powf(ENERGY_EXPONENT)
    }
}

/// Cost of one line buffer (a single 64 B register with comparators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LineBufferCost;

impl LineBufferCost {
    /// Area of one line buffer in mm².
    pub const AREA_MM2: f64 = 0.004;
    /// Leakage of one line buffer in mW.
    pub const STATIC_MW: f64 = 0.4;
    /// Energy per read from a line buffer in pJ (an order of magnitude
    /// cheaper than an I-cache access).
    pub const READ_PJ: f64 = 15.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_is_32k() {
        let c = CacheCostModel::new(32 * 1024);
        assert!((c.area_mm2() - REF_AREA_32K_MM2).abs() < 1e-12);
        assert!((c.static_power_mw() - REF_STATIC_32K_MW).abs() < 1e-12);
        assert!((c.read_energy_pj() - REF_READ_32K_PJ).abs() < 1e-12);
    }

    #[test]
    fn halving_capacity_reduces_everything_sublinearly() {
        let full = CacheCostModel::new(32 * 1024);
        let half = CacheCostModel::new(16 * 1024);
        assert!(half.area_mm2() < full.area_mm2());
        assert!(
            half.area_mm2() > full.area_mm2() / 2.0,
            "area has periphery overhead"
        );
        assert!((half.static_power_mw() - full.static_power_mw() / 2.0).abs() < 1e-9);
        assert!(half.read_energy_pj() < full.read_energy_pj());
        assert!(half.read_energy_pj() > full.read_energy_pj() / 2.0);
    }

    #[test]
    fn a_16k_cache_is_much_cheaper_per_access_than_32k() {
        let r = CacheCostModel::new(16 * 1024).read_energy_pj()
            / CacheCostModel::new(32 * 1024).read_energy_pj();
        assert!((r - (0.5f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn line_buffer_is_far_smaller_than_a_cache() {
        assert!(LineBufferCost::AREA_MM2 * 8.0 < CacheCostModel::new(16 * 1024).area_mm2());
        assert!(LineBufferCost::READ_PJ < CacheCostModel::new(16 * 1024).read_energy_pj());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_size_rejected() {
        CacheCostModel::new(0);
    }
}
