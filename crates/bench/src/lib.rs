//! Shared plumbing for the figure-reproduction harness.
//!
//! The `figures` binary (`cargo run -p bench-harness --bin figures --release -- <id>`)
//! regenerates the rows/series of every table and figure in the paper's
//! evaluation; the Criterion benches in `benches/figures.rs` time the
//! underlying simulations.

use acmp_sweep::SweepEngine;
use hpc_workloads::{Benchmark, GeneratorConfig};
use shared_icache::ExperimentContext;

/// Scale of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A reduced scale (fewer instructions, fewer workers) for quick smoke
    /// runs and CI.
    Quick,
    /// The full eight-worker configuration used for `EXPERIMENTS.md`.
    Paper,
}

impl Scale {
    /// Reads the scale from the `FIGURE_SCALE` environment variable
    /// (`quick` or `paper`); defaults to `Paper`.
    pub fn from_env() -> Self {
        match std::env::var("FIGURE_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }

    /// The trace-generation configuration for this scale.
    pub fn generator(self) -> GeneratorConfig {
        match self {
            Scale::Quick => GeneratorConfig {
                num_workers: 4,
                parallel_instructions_per_thread: 20_000,
                num_phases: 2,
                seed: 0xC0FF_EE00,
            },
            Scale::Paper => GeneratorConfig::paper(),
        }
    }

    /// Builds an experiment context at this scale (memory caches only).
    pub fn context(self) -> ExperimentContext {
        ExperimentContext::new(self.generator())
    }

    /// Builds a sweep engine at this scale (memory caches only).
    pub fn engine(self) -> SweepEngine {
        SweepEngine::new(self.generator())
    }

    /// Builds an experiment context backed by the default on-disk result
    /// store (`target/sweep-cache`, or `$ACMP_SWEEP_CACHE`), so repeated
    /// harness runs warm-start.  Falls back to a memory-only context if the
    /// store directory cannot be created.
    pub fn warm_context(self) -> ExperimentContext {
        match self.engine().with_default_disk_store() {
            Ok(engine) => ExperimentContext::from_engine(engine),
            Err(_) => self.context(),
        }
    }

    /// The benchmark list used at this scale (the `quick` subset shared
    /// with the sweep CLI, or all 24 workloads for `Paper`).
    pub fn benchmarks(self) -> Vec<Benchmark> {
        match self {
            Scale::Quick => acmp_sweep::grid::quick_benchmarks(),
            Scale::Paper => Benchmark::ALL.to_vec(),
        }
    }
}

/// The experiment identifiers understood by the harness.
pub const EXPERIMENT_IDS: [&str; 13] = [
    "fig01", "fig02", "fig03", "fig04", "table01", "fig07", "fig08", "fig09", "fig10", "fig11",
    "fig12", "fig13", "all",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller_than_paper_scale() {
        let q = Scale::Quick.generator();
        let p = Scale::Paper.generator();
        assert!(q.parallel_instructions_per_thread < p.parallel_instructions_per_thread);
        assert!(q.num_workers <= p.num_workers);
        assert!(Scale::Quick.benchmarks().len() < Scale::Paper.benchmarks().len());
        assert_eq!(Scale::Paper.benchmarks().len(), 24);
    }

    #[test]
    fn experiment_ids_cover_every_figure_and_table() {
        for id in ["fig01", "fig07", "fig12", "fig13", "table01"] {
            assert!(EXPERIMENT_IDS.contains(&id));
        }
    }
}
