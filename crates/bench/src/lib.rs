//! Shared plumbing for the figure-reproduction harness.
//!
//! The `figures` binary (`cargo run -p bench-harness --bin figures --release -- <id>`)
//! regenerates the rows/series of every table and figure in the paper's
//! evaluation; the Criterion benches in `benches/figures.rs` time the
//! underlying simulations.

use acmp_sweep::prelude::*;
use hpc_workloads::{Benchmark, GeneratorConfig};
use shared_icache::ExperimentContext;

/// Scale of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A reduced scale (fewer instructions, fewer workers) for quick smoke
    /// runs and CI.
    Quick,
    /// The full eight-worker configuration used for `EXPERIMENTS.md`.
    Paper,
}

impl Scale {
    /// Reads the scale from the `FIGURE_SCALE` environment variable
    /// (`quick` or `paper`); defaults to `Paper`.
    pub fn from_env() -> Self {
        // acmp-lint: allow(env-side-channel) -- FIGURE_SCALE is the harness's documented scale knob, read once at startup
        match std::env::var("FIGURE_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }

    /// The trace-generation configuration for this scale.
    pub fn generator(self) -> GeneratorConfig {
        match self {
            Scale::Quick => GeneratorConfig {
                num_workers: 4,
                parallel_instructions_per_thread: 20_000,
                num_phases: 2,
                seed: 0xC0FF_EE00,
            },
            Scale::Paper => GeneratorConfig::paper(),
        }
    }

    /// Builds an experiment context at this scale (memory caches only).
    pub fn context(self) -> ExperimentContext {
        ExperimentContext::new(self.generator())
    }

    /// Builds a sweep engine at this scale (memory caches only).
    pub fn engine(self) -> SweepEngine {
        SweepEngine::builder(self.generator())
            .build()
            .expect("building without a disk store cannot fail")
    }

    /// Builds an experiment context backed by the default on-disk result
    /// store (`target/sweep-cache`), so repeated harness runs warm-start.
    /// Falls back to a memory-only context if the store directory cannot be
    /// created.
    pub fn warm_context(self) -> ExperimentContext {
        let warm = SweepEngine::builder(self.generator())
            .store_dir(DiskStore::default_root())
            .build();
        match warm {
            Ok(engine) => ExperimentContext::from_engine(engine),
            Err(_) => self.context(),
        }
    }

    /// The benchmark list used at this scale (the `quick` subset shared
    /// with the sweep CLI, or all 24 workloads for `Paper`).
    pub fn benchmarks(self) -> Vec<Benchmark> {
        match self {
            Scale::Quick => acmp_sweep::grid::quick_benchmarks(),
            Scale::Paper => Benchmark::ALL.to_vec(),
        }
    }
}

/// The experiment identifiers understood by the harness.
pub const EXPERIMENT_IDS: [&str; 13] = [
    "fig01", "fig02", "fig03", "fig04", "table01", "fig07", "fig08", "fig09", "fig10", "fig11",
    "fig12", "fig13", "all",
];

/// Worker-count policy for the `sweep_throughput` bench's two arms.
///
/// The policy lives here (not in the bench file) so a unit test can pin the
/// property the bench depends on: the arms must use *distinct* worker
/// counts on every host.  The bench once sized its "parallel" arm to
/// `available_parallelism`, which on a 1-CPU CI container collapsed both
/// arms to one worker — the reported "speedup" was pure timing noise.
pub mod throughput {
    /// The serial arm always runs one pool thread.
    pub const SERIAL_WORKERS: usize = 1;

    /// The parallel arm for a host reporting `host` available threads: the
    /// host size, floored at 4 so the comparison stays a genuine 1-vs-N
    /// even when the host reports a single CPU.
    #[must_use]
    pub fn parallel_workers_for(host: usize) -> usize {
        host.max(4)
    }

    /// The parallel arm on this machine.
    #[must_use]
    pub fn parallel_workers() -> usize {
        parallel_workers_for(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        )
    }
}

/// Sample count for the `BENCH_*.json` trajectory measurements:
/// `$BENCH_SAMPLES` when set to a positive integer (CI quick mode passes
/// `BENCH_SAMPLES=1`), otherwise `default`.
#[must_use]
pub fn bench_samples(default: u32) -> u32 {
    // acmp-lint: allow(env-side-channel) -- BENCH_SAMPLES is the documented CI quick-mode knob; sample count only, never results
    std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// Turns on the aggregated metrics registry for this bench process, so
/// [`write_bench_report`] can embed a snapshot of the run's counters and
/// duration histograms.  Call it at the top of a bench, before the work
/// being measured.
pub fn enable_bench_metrics() {
    acmp_obs::enable_metrics();
}

/// Writes a `BENCH_*.json` trajectory report to the workspace root.
///
/// `file` is the bare file name (`BENCH_sweep.json`); the contents are one
/// JSON object plus a trailing newline, so revisions diff cleanly.  When
/// the metrics registry is on (see [`enable_bench_metrics`]) and `report`
/// is an object, a snapshot — simulation count, cache hits, trace-replay
/// refills, and the rest of the run's counters and histograms — is
/// embedded under a `"metrics"` key, so a trajectory file explains *why*
/// its numbers moved, not just that they did.
pub fn write_bench_report(file: &str, report: &serde::Value) {
    let mut report = report.clone();
    if acmp_obs::metrics_enabled() {
        if let serde::Value::Object(fields) = &mut report {
            fields.retain(|(k, _)| k != "metrics");
            fields.push((
                "metrics".to_string(),
                acmp_obs::registry().snapshot().to_value(),
            ));
        }
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file);
    if let Err(e) = std::fs::write(&path, format!("{report}\n")) {
        acmp_obs::logline!("bench: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller_than_paper_scale() {
        let q = Scale::Quick.generator();
        let p = Scale::Paper.generator();
        assert!(q.parallel_instructions_per_thread < p.parallel_instructions_per_thread);
        assert!(q.num_workers <= p.num_workers);
        assert!(Scale::Quick.benchmarks().len() < Scale::Paper.benchmarks().len());
        assert_eq!(Scale::Paper.benchmarks().len(), 24);
    }

    #[test]
    fn experiment_ids_cover_every_figure_and_table() {
        for id in ["fig01", "fig07", "fig12", "fig13", "table01"] {
            assert!(EXPERIMENT_IDS.contains(&id));
        }
    }

    #[test]
    fn throughput_arms_never_share_a_worker_count() {
        // Regression: the throughput bench must pin a genuine serial-vs-N
        // comparison on every host, including 1-CPU CI containers where
        // `available_parallelism` is 1.
        for host in [1, 2, 4, 8, 64] {
            let parallel = throughput::parallel_workers_for(host);
            assert!(
                parallel > throughput::SERIAL_WORKERS,
                "host {host}: both bench arms would run {parallel} workers"
            );
        }
        assert!(throughput::parallel_workers() >= 4);
        assert!(throughput::parallel_workers() > throughput::SERIAL_WORKERS);
    }

    #[test]
    fn bench_samples_defaults_when_env_is_unset_or_bad() {
        // Only the default path is testable here (tests run in parallel and
        // must not mutate the process environment).
        assert!(bench_samples(3) >= 1);
    }
}
