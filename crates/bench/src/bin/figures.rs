//! Regenerates the tables and figures of the paper's evaluation section.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench-harness --release --bin figures -- <id> [<id> ...]
//! cargo run -p bench-harness --release --bin figures -- all
//! FIGURE_SCALE=quick cargo run -p bench-harness --release --bin figures -- fig07
//! ```
//!
//! Valid ids: `fig01 fig02 fig03 fig04 table01 fig07 fig08 fig09 fig10 fig11
//! fig12 fig13 all`.

use bench_harness::{Scale, EXPERIMENT_IDS};
use shared_icache::figures;
use shared_icache::ExperimentContext;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        acmp_obs::logline!(
            "usage: figures <id> [<id> ...]   (ids: {})",
            EXPERIMENT_IDS.join(" ")
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let scale = Scale::from_env();
    let requested: Vec<String> = if args.iter().any(|a| a == "all") {
        EXPERIMENT_IDS
            .iter()
            .filter(|id| **id != "all")
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };

    for id in &requested {
        if !EXPERIMENT_IDS.contains(&id.as_str()) {
            acmp_obs::logline!(
                "unknown experiment id `{id}` (valid: {})",
                EXPERIMENT_IDS.join(" ")
            );
            std::process::exit(2);
        }
    }

    println!("# shared-icache figure harness (scale: {scale:?})\n");
    // Warm-start: results land in the content-addressed store under
    // `target/sweep-cache`, so re-running a figure skips its simulations.
    let ctx = scale.warm_context();
    let benchmarks = scale.benchmarks();
    for id in requested {
        run_one(&id, &ctx, &benchmarks, scale);
        println!();
    }
    let stats = ctx.stats();
    acmp_obs::logline!(
        "[engine] simulated {}, memory-hits {}, disk-hits {}, trace-gens {}, trace-disk-hits {}",
        stats.simulated,
        stats.memory_hits,
        stats.disk_hits,
        stats.trace_generated,
        stats.trace_disk_hits
    );
}

fn run_one(
    id: &str,
    ctx: &ExperimentContext,
    benchmarks: &[hpc_workloads::Benchmark],
    scale: Scale,
) {
    let start = std::time::Instant::now();
    match id {
        "fig01" => println!("{}", figures::fig01::compute(31)),
        "fig02" => println!("{}", figures::fig02::compute(ctx, benchmarks)),
        "fig03" => println!("{}", figures::fig03::compute(ctx, benchmarks)),
        "fig04" => println!("{}", figures::fig04::compute(ctx, benchmarks)),
        "table01" => println!("{}", figures::table01::compute()),
        "fig07" => println!("{}", figures::fig07::compute(ctx, benchmarks)),
        "fig08" => println!("{}", figures::fig08::compute(ctx, benchmarks)),
        "fig09" => println!("{}", figures::fig09::compute(ctx, benchmarks)),
        "fig10" => println!("{}", figures::fig10::compute(ctx, benchmarks)),
        "fig11" => println!("{}", figures::fig11::compute(ctx, benchmarks)),
        "fig12" => println!("{}", figures::fig12::compute(ctx, benchmarks)),
        "fig13" => println!("{}", figures::fig13::compute(ctx, benchmarks)),
        other => unreachable!("unvalidated experiment id {other}"),
    }
    acmp_obs::logline!(
        "[{id}] completed in {:.1}s at {scale:?} scale",
        start.elapsed().as_secs_f64()
    );
}
