//! `cache_lookup`: sim-cache set-associative lookup throughput.
//!
//! Drives a 32 KB I-cache with a deterministic mixed-locality address
//! stream (hot loop + strided code walk, the shape instruction fetch
//! produces) and reports nanoseconds per access — the structure-of-arrays
//! tag layout and multiply-shift line hashing show up directly here.  The
//! trajectory lands in `BENCH_cache_lookup.json` at the workspace root.

use bench_harness::{bench_samples, enable_bench_metrics, write_bench_report};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use serde_json::json;
use sim_cache::{CacheConfig, SetAssocCache};
use std::time::Instant;

const STREAM_LEN: usize = 200_000;

/// Deterministic address stream: 3/4 of accesses walk a hot 16 KB loop,
/// the rest stride through a 1 MB code region — tag hits dominate, with a
/// steady trickle of misses and evictions, like real fetch traffic.
fn address_stream() -> Vec<u64> {
    let mut addrs = Vec::with_capacity(STREAM_LEN);
    let mut lcg: u64 = 0x2545_F491_4F6C_DD1D;
    for i in 0..STREAM_LEN {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let addr = if !lcg.is_multiple_of(4) {
            0x40_0000 + (lcg >> 33) % (16 * 1024)
        } else {
            0x80_0000 + (i as u64 * 192) % (1024 * 1024)
        };
        addrs.push(addr & !3);
    }
    addrs
}

/// One pass over the stream; returns the hit count so the work cannot be
/// optimised away.
fn run_lookups(cache: &mut SetAssocCache, addrs: &[u64]) -> u64 {
    let mut hits = 0u64;
    for &addr in addrs {
        if cache.access(addr).is_hit() {
            hits += 1;
        }
    }
    hits
}

fn bench_cache_lookup(c: &mut Criterion) {
    enable_bench_metrics();
    let addrs = address_stream();
    let mut cache = SetAssocCache::new(CacheConfig::icache_32k());
    // Warm once so the measured passes see a populated cache.
    run_lookups(&mut cache, &addrs);

    let mut group = c.benchmark_group("cache_lookup");
    group.bench_function("icache_32k/mixed", |b| {
        b.iter(|| black_box(run_lookups(&mut cache, &addrs)))
    });
    group.finish();

    let samples = bench_samples(5);
    let start = Instant::now();
    let mut hits = 0;
    for _ in 0..samples {
        hits = run_lookups(&mut cache, &addrs);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(samples);
    let ns_per_lookup = wall_ms * 1e6 / STREAM_LEN as f64;
    let report = json!({
        "bench": "cache_lookup",
        "cache": "icache_32k",
        "samples": samples,
        "accesses": STREAM_LEN,
        "hits": hits,
        "pass_ms": wall_ms,
        "ns_per_lookup": ns_per_lookup,
    });
    write_bench_report("BENCH_cache_lookup.json", &report);
    println!(
        "cache_lookup: {STREAM_LEN} accesses ({hits} hits) in {wall_ms:.2} ms ({ns_per_lookup:.1} ns/lookup), trajectory in BENCH_cache_lookup.json"
    );
}

criterion_group! {
    name = cache_lookup;
    config = Criterion::default().sample_size(10);
    targets = bench_cache_lookup,
}
criterion_main!(cache_lookup);
