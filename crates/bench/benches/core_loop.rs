//! `core_loop`: the sim-core per-cycle loop, timed through a whole machine.
//!
//! Builds one quick-scale machine (CG traces, baseline design) and runs it
//! to completion, reporting nanoseconds per simulated machine cycle — the
//! number the event-driven idle skip, the head-fetch memo and the lookahead
//! prefix skip all exist to shrink.  The trajectory lands in
//! `BENCH_core_loop.json` at the workspace root.

use acmp_sweep::prelude::*;
use bench_harness::{bench_samples, enable_bench_metrics, write_bench_report};
use criterion::{criterion_group, criterion_main, Criterion};
use hpc_workloads::{Benchmark, GeneratorConfig, TraceGenerator};
use serde_json::json;
use sim_acmp::Machine;
use sim_trace::TraceSet;
use std::sync::Arc;
use std::time::Instant;

fn generator() -> GeneratorConfig {
    GeneratorConfig {
        num_workers: 4,
        parallel_instructions_per_thread: 20_000,
        num_phases: 2,
        seed: 0xC0FF_EE00,
    }
}

fn traces() -> Arc<TraceSet> {
    Arc::new(TraceGenerator::new(Benchmark::Cg.profile(), generator()).generate())
}

/// Runs one machine to completion; returns the simulated cycle count.
fn run_machine(traces: &Arc<TraceSet>) -> u64 {
    let config = DesignPoint::baseline().acmp_config(generator().num_workers);
    let machine = Machine::with_shared_traces(config, Arc::clone(traces));
    machine.run().expect("quick-scale machine completes").cycles
}

fn bench_core_loop(c: &mut Criterion) {
    enable_bench_metrics();
    let traces = traces();
    let mut group = c.benchmark_group("core_loop");
    group.bench_function("cg/baseline", |b| b.iter(|| run_machine(&traces)));
    group.finish();

    let samples = bench_samples(3);
    let start = Instant::now();
    let mut cycles = 0u64;
    for _ in 0..samples {
        cycles = run_machine(&traces);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(samples);
    let ns_per_cycle = wall_ms * 1e6 / cycles as f64;
    let report = json!({
        "bench": "core_loop",
        "benchmark": "cg",
        "design": "baseline",
        "samples": samples,
        "machine_cycles": cycles,
        "run_ms": wall_ms,
        "ns_per_cycle": ns_per_cycle,
    });
    write_bench_report("BENCH_core_loop.json", &report);
    println!(
        "core_loop: {cycles} cycles in {wall_ms:.1} ms ({ns_per_cycle:.0} ns/cycle), trajectory in BENCH_core_loop.json"
    );
}

criterion_group! {
    name = core_loop;
    config = Criterion::default().sample_size(5);
    targets = bench_core_loop,
}
criterion_main!(core_loop);
