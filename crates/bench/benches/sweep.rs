//! `sweep_throughput`: 1-worker vs N-worker wall time on a small grid.
//!
//! Times the sweep engine end-to-end (trace generation + simulation +
//! caching) on the quick-benchmark × Fig. 7 grid, once pinned to a single
//! pool thread and once at host parallelism, and writes the measured
//! trajectory to `BENCH_sweep.json` at the workspace root so the speedup is
//! tracked across revisions.

use acmp_sweep::{DesignPoint, SweepEngine};
use criterion::{criterion_group, criterion_main, Criterion};
use hpc_workloads::{Benchmark, GeneratorConfig};
use serde_json::json;
use std::time::Instant;

const BENCHMARKS: [Benchmark; 6] = [
    Benchmark::Cg,
    Benchmark::Lu,
    Benchmark::Ua,
    Benchmark::CoEvp,
    Benchmark::CoMd,
    Benchmark::Lulesh,
];

fn generator() -> GeneratorConfig {
    GeneratorConfig {
        num_workers: 4,
        parallel_instructions_per_thread: 10_000,
        num_phases: 1,
        seed: 42,
    }
}

fn designs() -> Vec<DesignPoint> {
    vec![
        DesignPoint::baseline(),
        DesignPoint::naive_shared(2),
        DesignPoint::naive_shared(4),
        DesignPoint::naive_shared(8),
    ]
}

/// Runs the full grid on a fresh (cold-cache, no disk store) engine.
fn run_grid(threads: usize) -> usize {
    let engine = SweepEngine::new(generator()).with_threads(threads);
    engine.run_grid(&BENCHMARKS, &designs()).rows.len()
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Mean wall time of `samples` cold runs, in milliseconds.
fn measure_ms(threads: usize, samples: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..samples {
        run_grid(threads);
    }
    start.elapsed().as_secs_f64() * 1e3 / f64::from(samples)
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let host = host_threads();
    let mut group = c.benchmark_group("sweep_throughput");
    group.bench_function("workers/1", |b| b.iter(|| run_grid(1)));
    group.bench_function(format!("workers/{host}"), |b| b.iter(|| run_grid(host)));
    group.finish();

    // Trajectory file: an explicit measurement (independent of the bench
    // harness's sample accounting) written where CI and later revisions can
    // diff it.
    let samples = 3;
    let serial_ms = measure_ms(1, samples);
    let parallel_ms = measure_ms(host, samples);
    let jobs = BENCHMARKS.len() * designs().len();
    let report = json!({
        "bench": "sweep_throughput",
        "grid_jobs": jobs,
        "samples": samples,
        "workers_serial": 1,
        "workers_parallel": host,
        "serial_ms": serial_ms,
        "parallel_ms": parallel_ms,
        "speedup": serial_ms / parallel_ms,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => println!(
            "sweep_throughput: {jobs} jobs — {serial_ms:.1} ms serial, {parallel_ms:.1} ms on {host} workers ({:.2}x), trajectory in BENCH_sweep.json",
            serial_ms / parallel_ms
        ),
        Err(e) => eprintln!("sweep_throughput: could not write {path}: {e}"),
    }
}

criterion_group! {
    name = sweep;
    config = Criterion::default().sample_size(3);
    targets = bench_sweep_throughput,
}
criterion_main!(sweep);
