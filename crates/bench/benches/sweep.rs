//! `sweep_throughput`: 1-worker vs N-worker wall time on a small grid.
//!
//! Times the sweep engine end-to-end (trace generation + simulation +
//! caching) on the quick-benchmark × Fig. 7 grid and writes the measured
//! trajectory to `BENCH_sweep.json` at the workspace root so the speedup is
//! tracked across revisions.
//!
//! The two arms are a genuine serial-vs-N comparison:
//!
//! * distinct worker counts on every host — the serial arm is pinned to one
//!   pool thread, the parallel arm to `bench_harness::throughput::
//!   parallel_workers()` (host size, floored at 4 so a 1-CPU CI container
//!   cannot collapse the arms onto each other);
//! * a cold store per arm — every measured run builds a fresh engine with
//!   no disk store and empty in-memory caches, so neither arm warm-starts
//!   from the other's work.

use acmp_sweep::prelude::*;
use bench_harness::{bench_samples, enable_bench_metrics, throughput, write_bench_report};
use criterion::{criterion_group, criterion_main, Criterion};
use hpc_workloads::{Benchmark, GeneratorConfig};
use serde_json::json;
use std::time::Instant;

const BENCHMARKS: [Benchmark; 6] = [
    Benchmark::Cg,
    Benchmark::Lu,
    Benchmark::Ua,
    Benchmark::CoEvp,
    Benchmark::CoMd,
    Benchmark::Lulesh,
];

fn generator() -> GeneratorConfig {
    GeneratorConfig {
        num_workers: 4,
        parallel_instructions_per_thread: 10_000,
        num_phases: 1,
        seed: 42,
    }
}

fn designs() -> Vec<DesignPoint> {
    vec![
        DesignPoint::baseline(),
        DesignPoint::naive_shared(2).expect("bench cpc is valid"),
        DesignPoint::naive_shared(4).expect("bench cpc is valid"),
        DesignPoint::naive_shared(8).expect("bench cpc is valid"),
    ]
}

/// Runs the full grid on a fresh (cold-cache, no disk store) engine.
fn run_grid(workers: usize) -> usize {
    let engine = SweepEngine::builder(generator())
        .workers(workers)
        .build()
        .expect("building without a disk store cannot fail");
    engine.run_grid(&BENCHMARKS, &designs()).rows.len()
}

/// Mean wall time of `samples` cold runs, in milliseconds.
fn measure_ms(workers: usize, samples: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..samples {
        run_grid(workers);
    }
    start.elapsed().as_secs_f64() * 1e3 / f64::from(samples)
}

fn bench_sweep_throughput(c: &mut Criterion) {
    enable_bench_metrics();
    let serial = throughput::SERIAL_WORKERS;
    let parallel = throughput::parallel_workers();
    assert!(
        parallel > serial,
        "bench arms must use distinct worker counts ({serial} vs {parallel})"
    );
    let mut group = c.benchmark_group("sweep_throughput");
    group.bench_function(format!("workers/{serial}"), |b| b.iter(|| run_grid(serial)));
    group.bench_function(format!("workers/{parallel}"), |b| {
        b.iter(|| run_grid(parallel))
    });
    group.finish();

    // Trajectory file: an explicit measurement (independent of the bench
    // harness's sample accounting) written where CI and later revisions can
    // diff it.
    let samples = bench_samples(3);
    let serial_ms = measure_ms(serial, samples);
    let parallel_ms = measure_ms(parallel, samples);
    let jobs = BENCHMARKS.len() * designs().len();
    let report = json!({
        "bench": "sweep_throughput",
        "grid_jobs": jobs,
        "samples": samples,
        "workers_serial": serial,
        "workers_parallel": parallel,
        "serial_ms": serial_ms,
        "parallel_ms": parallel_ms,
        "speedup": serial_ms / parallel_ms,
    });
    write_bench_report("BENCH_sweep.json", &report);
    println!(
        "sweep_throughput: {jobs} jobs — {serial_ms:.1} ms serial, {parallel_ms:.1} ms on {parallel} workers ({:.2}x), trajectory in BENCH_sweep.json",
        serial_ms / parallel_ms
    );
}

criterion_group! {
    name = sweep;
    config = Criterion::default().sample_size(3);
    targets = bench_sweep_throughput,
}
criterion_main!(sweep);
