//! Criterion benches: one group per paper table/figure.
//!
//! Each bench times the simulations (or analytic computations) behind the
//! corresponding figure at a reduced scale, so `cargo bench` both exercises
//! every experiment path and tracks the simulator's own performance.
//! The full-scale tables for `EXPERIMENTS.md` are produced by the `figures`
//! binary instead.

use criterion::{criterion_group, criterion_main, Criterion};
use hpc_workloads::{Benchmark, GeneratorConfig};
use shared_icache::{figures, DesignPoint, ExperimentContext};

/// A small but representative benchmark subset so a full `cargo bench`
/// stays in the minutes range.
const BENCHMARKS: [Benchmark; 3] = [Benchmark::Cg, Benchmark::Lu, Benchmark::CoEvp];

fn bench_generator() -> GeneratorConfig {
    GeneratorConfig {
        num_workers: 4,
        parallel_instructions_per_thread: 10_000,
        num_phases: 1,
        seed: 42,
    }
}

fn fresh_context() -> ExperimentContext {
    ExperimentContext::new(bench_generator())
}

fn bench_fig01(c: &mut Criterion) {
    c.bench_function("fig01/hill_marty_series", |b| {
        b.iter(|| figures::fig01::compute(301))
    });
}

fn bench_fig02(c: &mut Criterion) {
    c.bench_function("fig02/basic_block_lengths", |b| {
        b.iter(|| {
            let ctx = fresh_context();
            figures::fig02::compute(&ctx, &BENCHMARKS)
        })
    });
}

fn bench_fig03(c: &mut Criterion) {
    c.bench_function("fig03/mpki_replay", |b| {
        b.iter(|| {
            let ctx = fresh_context();
            figures::fig03::compute(&ctx, &BENCHMARKS)
        })
    });
}

fn bench_fig04(c: &mut Criterion) {
    c.bench_function("fig04/instruction_sharing", |b| {
        b.iter(|| {
            let ctx = fresh_context();
            figures::fig04::compute(&ctx, &BENCHMARKS)
        })
    });
}

fn bench_table01(c: &mut Criterion) {
    c.bench_function("table01/configuration", |b| {
        b.iter(figures::table01::compute)
    });
}

fn bench_fig07(c: &mut Criterion) {
    c.bench_function("fig07/naive_sharing_sim", |b| {
        b.iter(|| {
            let ctx = fresh_context();
            figures::fig07::compute(&ctx, &[Benchmark::Cg])
        })
    });
}

fn bench_fig08(c: &mut Criterion) {
    c.bench_function("fig08/cpi_stack_sim", |b| {
        b.iter(|| {
            let ctx = fresh_context();
            figures::fig08::compute(&ctx, &[Benchmark::Lu])
        })
    });
}

fn bench_fig09(c: &mut Criterion) {
    c.bench_function("fig09/access_ratio_sim", |b| {
        b.iter(|| {
            let ctx = fresh_context();
            figures::fig09::compute(&ctx, &[Benchmark::Ua])
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10/buffers_vs_bandwidth_sim", |b| {
        b.iter(|| {
            let ctx = fresh_context();
            figures::fig10::compute(&ctx, &[Benchmark::Lu])
        })
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11/miss_analysis_sim", |b| {
        b.iter(|| {
            let ctx = fresh_context();
            figures::fig11::compute(&ctx, &[Benchmark::CoEvp])
        })
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12/area_energy_sim", |b| {
        b.iter(|| {
            let ctx = fresh_context();
            figures::fig12::compute(&ctx, &[Benchmark::Cg])
        })
    });
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13/all_shared_sim", |b| {
        b.iter(|| {
            let ctx = fresh_context();
            figures::fig13::compute(&ctx, &[Benchmark::CoMd])
        })
    });
}

fn bench_single_simulation(c: &mut Criterion) {
    // A plain machine-throughput benchmark: cycles simulated per second for
    // the baseline and the proposed design.
    let mut group = c.benchmark_group("simulator_throughput");
    for design in [DesignPoint::baseline(), DesignPoint::proposed()] {
        group.bench_function(design.name.clone(), |b| {
            b.iter(|| {
                let ctx = fresh_context();
                ctx.simulate(Benchmark::Lu, &design)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig01,
        bench_fig02,
        bench_fig03,
        bench_fig04,
        bench_table01,
        bench_fig07,
        bench_fig08,
        bench_fig09,
        bench_fig10,
        bench_fig11,
        bench_fig12,
        bench_fig13,
        bench_single_simulation,
}
criterion_main!(benches);
