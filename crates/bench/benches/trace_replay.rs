//! `trace_replay`: sim-trace record replay throughput.
//!
//! Generates one quick-scale CG trace set and times pulling every record of
//! every thread through [`SharedTraceCursor`] in the same batched fashion
//! the cores replay them, reporting nanoseconds per record — the number the
//! allocation hoisting and record batching in trace replay act on.  The
//! trajectory lands in `BENCH_trace_replay.json` at the workspace root.

use bench_harness::{bench_samples, enable_bench_metrics, write_bench_report};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpc_workloads::{Benchmark, GeneratorConfig, TraceGenerator};
use serde_json::json;
use sim_trace::{SharedTraceCursor, ThreadId, TraceRecord, TraceSet, TraceSource};
use std::sync::Arc;
use std::time::Instant;

/// The per-core replay batch size used by sim-core.
const BATCH: usize = 64;

fn generator() -> GeneratorConfig {
    GeneratorConfig {
        num_workers: 4,
        parallel_instructions_per_thread: 20_000,
        num_phases: 2,
        seed: 0xC0FF_EE00,
    }
}

fn traces() -> Arc<TraceSet> {
    Arc::new(TraceGenerator::new(Benchmark::Cg.profile(), generator()).generate())
}

/// Replays every thread's records in batches; returns the record count.
fn replay_all(set: &Arc<TraceSet>) -> u64 {
    let mut total = 0u64;
    let mut buf: Vec<TraceRecord> = Vec::with_capacity(BATCH);
    for thread in 0..set.num_threads() {
        let mut cursor = SharedTraceCursor::new(Arc::clone(set), ThreadId(thread));
        loop {
            buf.clear();
            let n = cursor.next_records(&mut buf, BATCH);
            if n == 0 {
                break;
            }
            total += n as u64;
            black_box(&buf);
        }
    }
    total
}

fn bench_trace_replay(c: &mut Criterion) {
    enable_bench_metrics();
    let set = traces();
    let mut group = c.benchmark_group("trace_replay");
    group.bench_function("cg/all-threads", |b| b.iter(|| replay_all(&set)));
    group.finish();

    let samples = bench_samples(10);
    let start = Instant::now();
    let mut records = 0u64;
    for _ in 0..samples {
        records = replay_all(&set);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(samples);
    let ns_per_record = wall_ms * 1e6 / records as f64;
    let report = json!({
        "bench": "trace_replay",
        "benchmark": "cg",
        "samples": samples,
        "records": records,
        "threads": set.num_threads(),
        "replay_ms": wall_ms,
        "ns_per_record": ns_per_record,
    });
    write_bench_report("BENCH_trace_replay.json", &report);
    println!(
        "trace_replay: {records} records over {} threads in {wall_ms:.2} ms ({ns_per_record:.1} ns/record), trajectory in BENCH_trace_replay.json",
        set.num_threads()
    );
}

criterion_group! {
    name = trace_replay;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_replay,
}
criterion_main!(trace_replay);
